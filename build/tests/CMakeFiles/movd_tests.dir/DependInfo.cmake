
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/movd_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/delaunay_test.cc" "tests/CMakeFiles/movd_tests.dir/delaunay_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/delaunay_test.cc.o.d"
  "/root/repo/tests/dynamic_voronoi_test.cc" "tests/CMakeFiles/movd_tests.dir/dynamic_voronoi_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/dynamic_voronoi_test.cc.o.d"
  "/root/repo/tests/fermat_test.cc" "tests/CMakeFiles/movd_tests.dir/fermat_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/fermat_test.cc.o.d"
  "/root/repo/tests/geom_basic_test.cc" "tests/CMakeFiles/movd_tests.dir/geom_basic_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/geom_basic_test.cc.o.d"
  "/root/repo/tests/geom_property_test.cc" "tests/CMakeFiles/movd_tests.dir/geom_property_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/geom_property_test.cc.o.d"
  "/root/repo/tests/gridcontour_test.cc" "tests/CMakeFiles/movd_tests.dir/gridcontour_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/gridcontour_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/movd_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kdtree_test.cc" "tests/CMakeFiles/movd_tests.dir/kdtree_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/kdtree_test.cc.o.d"
  "/root/repo/tests/molq_test.cc" "tests/CMakeFiles/movd_tests.dir/molq_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/molq_test.cc.o.d"
  "/root/repo/tests/movd_algebra_test.cc" "tests/CMakeFiles/movd_tests.dir/movd_algebra_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/movd_algebra_test.cc.o.d"
  "/root/repo/tests/movd_model_test.cc" "tests/CMakeFiles/movd_tests.dir/movd_model_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/movd_model_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/movd_tests.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/overlap_test.cc" "tests/CMakeFiles/movd_tests.dir/overlap_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/overlap_test.cc.o.d"
  "/root/repo/tests/polygon_test.cc" "tests/CMakeFiles/movd_tests.dir/polygon_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/polygon_test.cc.o.d"
  "/root/repo/tests/predicates_test.cc" "tests/CMakeFiles/movd_tests.dir/predicates_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/predicates_test.cc.o.d"
  "/root/repo/tests/pruned_overlap_test.cc" "tests/CMakeFiles/movd_tests.dir/pruned_overlap_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/pruned_overlap_test.cc.o.d"
  "/root/repo/tests/rtree_test.cc" "tests/CMakeFiles/movd_tests.dir/rtree_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/rtree_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/movd_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/svg_test.cc" "tests/CMakeFiles/movd_tests.dir/svg_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/svg_test.cc.o.d"
  "/root/repo/tests/topk_test.cc" "tests/CMakeFiles/movd_tests.dir/topk_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/topk_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/movd_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/voronoi_test.cc" "tests/CMakeFiles/movd_tests.dir/voronoi_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/voronoi_test.cc.o.d"
  "/root/repo/tests/weighted_pipeline_test.cc" "tests/CMakeFiles/movd_tests.dir/weighted_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/movd_tests.dir/weighted_pipeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/movd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/movd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/movd_network.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/movd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/movd_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/fermat/CMakeFiles/movd_fermat.dir/DependInfo.cmake"
  "/root/repo/build/src/voronoi/CMakeFiles/movd_voronoi.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/movd_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/movd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/movd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
