# Empty dependencies file for movd_tests.
# This may be replaced when dependencies are built.
