#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "voronoi/delaunay.h"

namespace movd {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  return pts;
}

// Counts real triangles (no synthetic vertex) and checks Euler-consistent
// counts for points in general position: for n >= 3 points with h hull
// vertices, #triangles = 2n - h - 2.
size_t CountRealTriangles(const Delaunay& dt) {
  size_t count = 0;
  const auto real = static_cast<int32_t>(dt.num_real_points());
  for (const auto& t : dt.Triangles()) {
    if (t.v[0] < real && t.v[1] < real && t.v[2] < real) ++count;
  }
  return count;
}

TEST(DelaunayTest, TriangleOfThreePoints) {
  const Delaunay dt({{0, 0}, {10, 0}, {5, 8}});
  EXPECT_EQ(dt.num_real_points(), 3u);
  EXPECT_EQ(CountRealTriangles(dt), 1u);
  EXPECT_TRUE(dt.VerifyDelaunay());
}

TEST(DelaunayTest, DuplicatesCollapsed) {
  const Delaunay dt({{0, 0}, {10, 0}, {5, 8}, {0, 0}, {10, 0}});
  EXPECT_EQ(dt.num_real_points(), 3u);
  EXPECT_TRUE(dt.VerifyDelaunay());
}

TEST(DelaunayTest, SquareHasTwoTriangles) {
  const Delaunay dt({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(CountRealTriangles(dt), 2u);
  EXPECT_TRUE(dt.VerifyDelaunay());
}

TEST(DelaunayTest, CollinearPointsProduceNoRealTriangles) {
  const Delaunay dt({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(CountRealTriangles(dt), 0u);
  EXPECT_TRUE(dt.VerifyDelaunay());
}

TEST(DelaunayTest, RegularGridIsDelaunay) {
  // Cocircular quadruples everywhere: the hardest degenerate input.
  std::vector<Point> pts;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const Delaunay dt(pts);
  EXPECT_TRUE(dt.VerifyDelaunay());
  EXPECT_EQ(CountRealTriangles(dt), 2u * 49u);  // 2 per grid cell
}

TEST(DelaunayTest, NeighborsAreSymmetric) {
  const auto pts = RandomPoints(60, 41);
  const Delaunay dt(pts);
  const auto n = static_cast<int32_t>(dt.num_real_points());
  for (int32_t i = 0; i < n; ++i) {
    for (const int32_t j : dt.Neighbors(i)) {
      const auto back = dt.Neighbors(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end())
          << i << " -> " << j;
    }
  }
}

class DelaunayRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DelaunayRandomTest, EmptyCircumcircleHolds) {
  const auto pts = RandomPoints(GetParam(), 42 + GetParam());
  const Delaunay dt(pts);
  EXPECT_EQ(dt.num_real_points(), pts.size());
  EXPECT_TRUE(dt.VerifyDelaunay());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayRandomTest,
                         ::testing::Values(4, 10, 50, 200, 500));

TEST(DelaunayTest, TriangleNeighborPointersAreMutual) {
  const auto pts = RandomPoints(120, 44);
  const Delaunay dt(pts);
  const auto tris = dt.Triangles();
  // Index triangles by their sorted vertex triple for reverse lookup.
  for (size_t t = 0; t < tris.size(); ++t) {
    for (int e = 0; e < 3; ++e) {
      const int32_t nb = tris[t].neighbor[e];
      if (nb < 0) continue;
      // The neighbor field holds ids in the internal array; count how many
      // listed triangles point back at a triangle sharing two vertices.
      const int32_t a = tris[t].v[(e + 1) % 3];
      const int32_t b = tris[t].v[(e + 2) % 3];
      bool found = false;
      for (const auto& other : tris) {
        int shared = 0;
        for (const int32_t v : other.v) shared += (v == a || v == b);
        if (shared == 2 && &other != &tris[t]) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "edge of triangle " << t;
    }
  }
}

TEST(DelaunayTest, NeighborListsMatchPerSiteQueries) {
  const auto pts = RandomPoints(80, 45);
  const Delaunay dt(pts);
  const auto lists = dt.NeighborLists();
  ASSERT_EQ(lists.size(), dt.num_real_points());
  for (int32_t i = 0; i < static_cast<int32_t>(lists.size()); ++i) {
    auto single = dt.Neighbors(i);
    std::sort(single.begin(), single.end());
    EXPECT_EQ(lists[i], single) << "site " << i;
  }
}

TEST(DelaunayTest, ClusteredPointsRemainValid) {
  Rng rng(43);
  std::vector<Point> pts;
  for (int c = 0; c < 5; ++c) {
    const Point center{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    for (int i = 0; i < 40; ++i) {
      pts.push_back(
          {center.x + rng.NextGaussian(), center.y + rng.NextGaussian()});
    }
  }
  const Delaunay dt(pts);
  EXPECT_TRUE(dt.VerifyDelaunay());
}

}  // namespace
}  // namespace movd
