// Tests of the adaptive quadtree weighted-Voronoi construction (DESIGN.md
// §11): extreme weight regimes, disconnected multiplicative cells, domain
// clipping, thread-count determinism, and the cross-method guarantee that
// adaptive covers contain every dense-grid-dominated sample.

#include <gtest/gtest.h>

#include "audit/audit_weighted.h"
#include "util/rng.h"
#include "voronoi/weighted.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

std::vector<WeightedCellApprox> Build(WeightedMethod method,
                                      const std::vector<WeightedSite>& sites,
                                      int resolution, const Rect& bounds,
                                      int threads = 1) {
  WeightedOptions opts;
  opts.method = method;
  opts.resolution = resolution;
  opts.threads = threads;
  return BuildWeightedCells(sites, bounds, opts);
}

TEST(EffectiveWeightedResolutionTest, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(EffectiveWeightedResolution(1), 1);
  EXPECT_EQ(EffectiveWeightedResolution(2), 2);
  EXPECT_EQ(EffectiveWeightedResolution(3), 4);
  EXPECT_EQ(EffectiveWeightedResolution(100), 128);
  EXPECT_EQ(EffectiveWeightedResolution(128), 128);
  // Capped so a huge request cannot explode the quadtree depth.
  EXPECT_EQ(EffectiveWeightedResolution((1 << 14) + 5), 1 << 14);
}

TEST(BestWeightedSiteTest, TiesGoToTheLowestIndex) {
  // The probe is exactly equidistant (same multiplier, same offset), so the
  // strict-< comparison keeps the first site. This rule is a pure function
  // of the point and the sites — no grid, resolution, or method involved —
  // which is what makes dense and adaptive ownership interchangeable.
  const std::vector<WeightedSite> sites = {{{30, 50}, 2.0, 1.0},
                                           {{70, 50}, 2.0, 1.0}};
  EXPECT_EQ(BestWeightedSite({50, 50}, sites), 0u);
  // Swapping the order moves the tie, proving it is the index that breaks
  // it, not the geometry.
  const std::vector<WeightedSite> swapped = {sites[1], sites[0]};
  EXPECT_EQ(BestWeightedSite({50, 50}, swapped), 0u);
}

TEST(AdaptiveWeightedTest, ExtremeMultiplierRatiosStayConservative) {
  // Ratio 150:1 — the heavy site keeps only a speck around its own
  // location; interval classification must neither lose that speck nor
  // leak the light site's cover outside the domain.
  const std::vector<WeightedSite> sites = {{{20, 20}, 1.0, 0.0},
                                           {{80, 80}, 150.0, 0.0}};
  const auto cells = Build(WeightedMethod::kAdaptive, sites, 128, kBounds);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_FALSE(cells[0].empty);
  EXPECT_FALSE(cells[1].empty);  // its own location is always its minimum
  EXPECT_GT(cells[0].sample_count, cells[1].sample_count);
  const AuditReport report =
      AuditAdaptiveWeightedCells(sites, cells, kBounds, 128);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(AdaptiveWeightedTest, ZeroOffsetVsLargeOffsetMixes) {
  // Moderate offset: both cells survive, the boundary shifts toward the
  // handicapped site.
  const std::vector<WeightedSite> shifted = {{{30, 50}, 1.0, 0.0},
                                             {{70, 50}, 1.0, 30.0}};
  const auto both = Build(WeightedMethod::kAdaptive, shifted, 128, kBounds);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_FALSE(both[0].empty);
  EXPECT_FALSE(both[1].empty);
  EXPECT_GT(both[0].sample_count, both[1].sample_count);
  EXPECT_TRUE(
      AuditAdaptiveWeightedCells(shifted, both, kBounds, 128).ok());

  // An offset larger than the domain diagonal dominates the site away
  // entirely: sentinel invalid MBR, no hull, no cover.
  const std::vector<WeightedSite> crushed = {{{30, 50}, 1.0, 0.0},
                                             {{70, 50}, 1.0, 500.0}};
  const auto one = Build(WeightedMethod::kAdaptive, crushed, 128, kBounds);
  ASSERT_EQ(one.size(), 2u);
  EXPECT_FALSE(one[0].empty);
  EXPECT_TRUE(one[1].empty);
  EXPECT_TRUE(one[1].mbr.Empty());
  EXPECT_TRUE(one[1].hull.Empty());
  EXPECT_TRUE(one[1].cover.empty());
  EXPECT_TRUE(AuditAdaptiveWeightedCells(crushed, one, kBounds, 128).ok());
}

TEST(AdaptiveWeightedTest, DisconnectedMultiplicativeCell) {
  // Collinear sites in a thin strip. Solving the 1-d dominance inequalities
  // for site 0 (weight 1) against site 1 (weight 10 at x=10) and site 2
  // (weight 2 at x=5): site 0 owns x < 10/3 and x > 100/9 — two components
  // separated by the middle site's cell. The multiplicative diagram is the
  // classic Apollonius construction where this disconnection is real, not
  // an artifact.
  const Rect strip(0, 0, 12, 0.75);
  const std::vector<WeightedSite> sites = {{{0, 0.375}, 1.0, 0.0},
                                           {{10, 0.375}, 10.0, 0.0},
                                           {{5, 0.375}, 2.0, 0.0}};
  const auto cells = Build(WeightedMethod::kAdaptive, sites, 256, strip);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_FALSE(cells[0].empty);
  // The cover must carry both components as separate rings.
  EXPECT_GE(cells[0].cover.size(), 2u);
  // And the MBR spans across the foreign cell in the middle.
  EXPECT_LT(cells[0].mbr.min_x, 4.0);
  EXPECT_GT(cells[0].mbr.max_x, 11.0);
  const AuditReport report =
      AuditAdaptiveWeightedCells(sites, cells, strip, 256);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(AdaptiveWeightedTest, CoversAndMbrsAreClippedToTheDomain) {
  // Sites hugging the border: the one-cell dilation of the cover would
  // leak outside without explicit clipping, and the MBR must follow.
  const std::vector<WeightedSite> sites = {{{0.5, 0.5}, 1.0, 0.0},
                                           {{99.5, 99.5}, 3.0, 0.0},
                                           {{0.5, 99.5}, 1.0, 20.0}};
  for (const WeightedMethod method :
       {WeightedMethod::kAdaptive, WeightedMethod::kDenseGrid}) {
    const auto cells = Build(method, sites, 64, kBounds);
    for (const WeightedCellApprox& cell : cells) {
      if (cell.empty) continue;
      EXPECT_TRUE(kBounds.Contains(cell.mbr));
      for (const Polygon& ring : cell.cover) {
        for (const Point& v : ring.vertices()) {
          EXPECT_TRUE(kBounds.Contains(v))
              << "(" << v.x << "," << v.y << ")";
        }
      }
    }
  }
}

TEST(AdaptiveWeightedTest, DeterministicAcrossThreadCounts) {
  Rng rng(77);
  std::vector<WeightedSite> sites;
  for (int i = 0; i < 12; ++i) {
    sites.push_back({{rng.Uniform(0, 100), rng.Uniform(0, 100)},
                     rng.Uniform(0.5, 4.0), rng.Uniform(0.0, 40.0)});
  }
  const auto a = Build(WeightedMethod::kAdaptive, sites, 128, kBounds, 1);
  const auto b = Build(WeightedMethod::kAdaptive, sites, 128, kBounds, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].empty, b[i].empty);
    EXPECT_EQ(a[i].sample_count, b[i].sample_count);
    if (a[i].empty) continue;
    // Bit-identical geometry, not merely close: the classification
    // frontier is fixed and the per-slot records concatenate in frontier
    // order, so the thread count cannot reorder anything.
    EXPECT_EQ(a[i].mbr, b[i].mbr);
    ASSERT_EQ(a[i].cover.size(), b[i].cover.size());
    for (size_t r = 0; r < a[i].cover.size(); ++r) {
      ASSERT_EQ(a[i].cover[r].vertices().size(),
                b[i].cover[r].vertices().size());
      for (size_t k = 0; k < a[i].cover[r].vertices().size(); ++k) {
        EXPECT_EQ(a[i].cover[r].vertices()[k], b[i].cover[r].vertices()[k]);
      }
    }
  }
}

TEST(AdaptiveWeightedTest, SampleCountsCoverTheLattice) {
  Rng rng(78);
  std::vector<WeightedSite> sites;
  for (int i = 0; i < 8; ++i) {
    sites.push_back({{rng.Uniform(0, 100), rng.Uniform(0, 100)},
                     rng.Uniform(0.5, 2.0), 0.0});
  }
  // Adaptive sample_count is covered leaf cells; ambiguous leaves are
  // recorded for every surviving candidate, so the sum is at least the
  // lattice size (conservative covers overlap, never undershoot).
  const auto cells = Build(WeightedMethod::kAdaptive, sites, 100, kBounds);
  size_t total = 0;
  for (const auto& cell : cells) total += cell.sample_count;
  const size_t lattice = static_cast<size_t>(EffectiveWeightedResolution(100)) *
                         EffectiveWeightedResolution(100);
  EXPECT_GE(total, lattice);
}

// The cross-method property, 20 seeds: every dense-lattice sample the
// shared tie rule assigns to generator i lies inside adaptive cell i's
// cover. AuditAdaptiveWeightedCells replays exactly this.
class AdaptiveContainsDenseTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(AdaptiveContainsDenseTest, CoversContainDenseDominatedSamples) {
  Rng rng(GetParam());
  std::vector<WeightedSite> sites;
  const int n = 3 + static_cast<int>(GetParam() % 10);
  for (int i = 0; i < n; ++i) {
    // Mix regimes: multiplicative-only, additive-only, and affine sites in
    // one diagram, with occasional extreme multipliers.
    const double mult = (i % 4 == 3) ? rng.Uniform(20.0, 120.0)
                                     : rng.Uniform(0.5, 3.0);
    const double off = (i % 2 == 0) ? 0.0 : rng.Uniform(0.0, 60.0);
    sites.push_back({{rng.Uniform(0, 100), rng.Uniform(0, 100)}, mult, off});
  }
  const auto cells = Build(WeightedMethod::kAdaptive, sites, 64, kBounds);
  const AuditReport report =
      AuditAdaptiveWeightedCells(sites, cells, kBounds, 64);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.CountKind(AuditKind::kWeightedCoverMiss), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveContainsDenseTest,
                         ::testing::Range<uint64_t>(9000, 9020));

// ---------------------------------------------------------------------------
// AuditAdaptiveWeightedCells corruption detection

std::vector<WeightedSite> AuditSites() {
  Rng rng(55);
  std::vector<WeightedSite> sites;
  for (int i = 0; i < 6; ++i) {
    sites.push_back({{rng.Uniform(10, 90), rng.Uniform(10, 90)},
                     rng.Uniform(0.5, 2.5), 0.0});
  }
  return sites;
}

TEST(AuditAdaptiveWeightedTest, DetectsShrunkenCover) {
  const auto sites = AuditSites();
  auto cells = Build(WeightedMethod::kAdaptive, sites, 32, kBounds);
  // Collapse one non-empty cell's cover to a speck: dominated lattice
  // samples now fall outside every ring, which is exactly the
  // conservative-cover violation the dense replay hunts.
  for (auto& cell : cells) {
    if (cell.empty) continue;
    const Point s = sites[cell.site].location;
    cell.cover = {Polygon({{s.x, s.y},
                           {s.x + 1e-3, s.y},
                           {s.x + 1e-3, s.y + 1e-3},
                           {s.x, s.y + 1e-3}})};
    cell.mbr = cell.cover[0].Bbox();
    break;
  }
  const AuditReport report =
      AuditAdaptiveWeightedCells(sites, cells, kBounds, 32);
  EXPECT_GE(report.CountKind(AuditKind::kWeightedCoverMiss), 1u)
      << report.Summary();
}

TEST(AuditAdaptiveWeightedTest, DetectsSiteTagMismatch) {
  const auto sites = AuditSites();
  auto cells = Build(WeightedMethod::kAdaptive, sites, 32, kBounds);
  cells[0].site = 3;
  const AuditReport report =
      AuditAdaptiveWeightedCells(sites, cells, kBounds, 32);
  EXPECT_GE(report.CountKind(AuditKind::kWeightedCellCount), 1u)
      << report.Summary();
}

TEST(AuditAdaptiveWeightedTest, DetectsEmptyFlagMismatch) {
  const auto sites = AuditSites();
  auto cells = Build(WeightedMethod::kAdaptive, sites, 32, kBounds);
  for (auto& cell : cells) {
    if (!cell.empty) {
      cell.empty = true;  // still carries samples, cover, a valid MBR
      break;
    }
  }
  const AuditReport report =
      AuditAdaptiveWeightedCells(sites, cells, kBounds, 32);
  EXPECT_GE(report.CountKind(AuditKind::kWeightedEmptyFlag), 1u)
      << report.Summary();
}

}  // namespace
}  // namespace movd
