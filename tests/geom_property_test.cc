// Property-based (fuzz-style) tests of the geometry kernel: randomized
// polygons and clip sequences, checking the algebraic invariants the MOVD
// pipeline relies on rather than specific values.

#include <cmath>

#include <gtest/gtest.h>

#include "geom/hull.h"
#include "geom/polygon.h"
#include "util/rng.h"

namespace movd {
namespace {

// A random convex polygon: the hull of random points in a random box.
ConvexPolygon RandomConvex(Rng* rng) {
  const double cx = rng->Uniform(-10, 10);
  const double cy = rng->Uniform(-10, 10);
  const double r = rng->Uniform(0.5, 8.0);
  std::vector<Point> pts;
  const int n = 4 + static_cast<int>(rng->NextBelow(12));
  for (int i = 0; i < n; ++i) {
    pts.push_back({cx + rng->Uniform(-r, r), cy + rng->Uniform(-r, r)});
  }
  return ConvexHull(pts);
}

class GeomFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeomFuzzTest, IntersectionAreaBoundedByOperands) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const ConvexPolygon a = RandomConvex(&rng);
    const ConvexPolygon b = RandomConvex(&rng);
    if (a.Empty() || b.Empty()) continue;
    const ConvexPolygon i = ConvexPolygon::Intersect(a, b);
    EXPECT_LE(i.Area(), a.Area() + 1e-9);
    EXPECT_LE(i.Area(), b.Area() + 1e-9);
    // The intersection's bbox sits inside both bboxes' intersection.
    if (!i.Empty()) {
      const Rect expected = a.Bbox().Intersect(b.Bbox());
      EXPECT_TRUE(expected.Contains(i.Bbox()) ||
                  expected.Intersect(i.Bbox()).Area() >=
                      i.Bbox().Area() * (1.0 - 1e-9));
    }
  }
}

TEST_P(GeomFuzzTest, PointsInIntersectionAreInBothOperands) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const ConvexPolygon a = RandomConvex(&rng);
    const ConvexPolygon b = RandomConvex(&rng);
    if (a.Empty() || b.Empty()) continue;
    const ConvexPolygon i = ConvexPolygon::Intersect(a, b);
    if (i.Empty()) continue;
    // Sample the intersection's interior via its centroid and vertex
    // midpoints pulled toward the centroid.
    const Point c = i.Centroid();
    std::vector<Point> probes = {c};
    for (const Point& v : i.vertices()) {
      probes.push_back(c + (v - c) * 0.9);
    }
    for (const Point& p : probes) {
      // Tolerance: containment with exact predicates can reject points on
      // the (double-rounded) boundary; nudge toward the centroid instead.
      EXPECT_TRUE(a.Contains(p) || a.Contains(c));
      EXPECT_TRUE(b.Contains(p) || b.Contains(c));
    }
  }
}

TEST_P(GeomFuzzTest, ClipSequencesShrinkMonotonically) {
  Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 50; ++trial) {
    ConvexPolygon poly = ConvexPolygon::FromRect(Rect(-5, -5, 5, 5));
    double prev_area = poly.Area();
    for (int c = 0; c < 12 && !poly.Empty(); ++c) {
      const Point a{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
      const Point b{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
      if (a == b) continue;
      poly.ClipByHalfPlane(a, b);
      EXPECT_LE(poly.Area(), prev_area + 1e-9);
      prev_area = poly.Area();
    }
  }
}

TEST_P(GeomFuzzTest, ClipIsIdempotent) {
  Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 50; ++trial) {
    ConvexPolygon poly = RandomConvex(&rng);
    if (poly.Empty()) continue;
    const Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    if (a == b) continue;
    poly.ClipByHalfPlane(a, b);
    const double once = poly.Area();
    poly.ClipByHalfPlane(a, b);
    EXPECT_NEAR(poly.Area(), once, 1e-9 * std::max(1.0, once));
  }
}

TEST_P(GeomFuzzTest, HullOfConvexPolygonIsItself) {
  Rng rng(GetParam() + 4);
  for (int trial = 0; trial < 50; ++trial) {
    const ConvexPolygon poly = RandomConvex(&rng);
    if (poly.Empty()) continue;
    const ConvexPolygon again = ConvexHull(poly.vertices());
    EXPECT_EQ(again.VertexCount(), poly.VertexCount());
    EXPECT_NEAR(again.Area(), poly.Area(), 1e-12 * std::max(1.0, poly.Area()));
  }
}

TEST_P(GeomFuzzTest, RegionIntersectionCommutesInArea) {
  Rng rng(GetParam() + 5);
  for (int trial = 0; trial < 30; ++trial) {
    const Region a = Region::FromConvex(RandomConvex(&rng));
    const Region b = Region::FromConvex(RandomConvex(&rng));
    const double ab = Region::Intersect(a, b).Area();
    const double ba = Region::Intersect(b, a).Area();
    EXPECT_NEAR(ab, ba, 1e-9 * std::max(1.0, ab));
  }
}

TEST_P(GeomFuzzTest, RegionIntersectionAssociatesInArea) {
  Rng rng(GetParam() + 6);
  for (int trial = 0; trial < 30; ++trial) {
    const Region a = Region::FromConvex(RandomConvex(&rng));
    const Region b = Region::FromConvex(RandomConvex(&rng));
    const Region c = Region::FromConvex(RandomConvex(&rng));
    const double left =
        Region::Intersect(Region::Intersect(a, b), c).Area();
    const double right =
        Region::Intersect(a, Region::Intersect(b, c)).Area();
    EXPECT_NEAR(left, right, 1e-6 * std::max(1.0, left));
  }
}

TEST_P(GeomFuzzTest, CentroidLiesInsideConvexPolygon) {
  Rng rng(GetParam() + 7);
  for (int trial = 0; trial < 100; ++trial) {
    const ConvexPolygon poly = RandomConvex(&rng);
    if (poly.Empty()) continue;
    EXPECT_TRUE(poly.Contains(poly.Centroid()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeomFuzzTest,
                         ::testing::Values(701, 702, 703, 704));

}  // namespace
}  // namespace movd
