// Tests for the algebraic structure of the MOVD overlap operation ⊕
// (paper §4.3): idempotency, commutativity, associativity, identity, and
// closure/absorption (Property 14), plus the structural MOVD properties
// (Properties 2, 3, 6, 7).

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "model/movd_model.h"
#include "core/overlap.h"
#include "util/rng.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

Movd BasicMovd(size_t sites, int32_t set, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < sites; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  const auto vd = VoronoiDiagram::Build(pts, kBounds);
  std::vector<int32_t> ids(vd.sites().size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  return MovdFromVoronoi(vd, set, ids);
}

// Compares two MOVDs as poi-combination -> total-area maps: the algebra's
// equalities are stated on the decomposition of the search space, and the
// decomposition is determined by which combination owns which area.
std::vector<std::pair<std::string, double>> AreaByCombination(
    const Movd& movd) {
  std::vector<std::pair<std::string, double>> items;
  for (const Ovr& ovr : movd.ovrs) {
    std::string key;
    for (const PoiRef& p : ovr.pois) {
      key += std::to_string(p.set) + ":" + std::to_string(p.object) + ";";
    }
    items.emplace_back(std::move(key), ovr.region.Area());
  }
  std::sort(items.begin(), items.end());
  // Merge duplicate combinations (an OVR may be split into several pieces).
  std::vector<std::pair<std::string, double>> merged;
  for (const auto& [key, area] : items) {
    if (!merged.empty() && merged.back().first == key) {
      merged.back().second += area;
    } else {
      merged.emplace_back(key, area);
    }
  }
  return merged;
}

void ExpectSameDecomposition(const Movd& a, const Movd& b) {
  const auto da = AreaByCombination(a);
  const auto db = AreaByCombination(b);
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].first, db[i].first);
    EXPECT_NEAR(da[i].second, db[i].second,
                1e-6 * std::max(1.0, da[i].second));
  }
}

TEST(MovdAlgebraTest, IdempotentLaw) {
  // Property 9: M ⊕ M = M.
  const Movd m = BasicMovd(12, 0, 91);
  const Movd mm = Overlap(m, m, BoundaryMode::kRealRegion);
  ExpectSameDecomposition(m, mm);
}

TEST(MovdAlgebraTest, CommutativeLaw) {
  // Property 10: A ⊕ B = B ⊕ A.
  const Movd a = BasicMovd(10, 0, 92);
  const Movd b = BasicMovd(14, 1, 93);
  ExpectSameDecomposition(Overlap(a, b, BoundaryMode::kRealRegion),
                          Overlap(b, a, BoundaryMode::kRealRegion));
}

TEST(MovdAlgebraTest, AssociativeLaw) {
  // Property 11: (A ⊕ B) ⊕ C = A ⊕ (B ⊕ C).
  const Movd a = BasicMovd(6, 0, 94);
  const Movd b = BasicMovd(7, 1, 95);
  const Movd c = BasicMovd(8, 2, 96);
  const Movd left = Overlap(Overlap(a, b, BoundaryMode::kRealRegion), c,
                            BoundaryMode::kRealRegion);
  const Movd right = Overlap(a, Overlap(b, c, BoundaryMode::kRealRegion),
                             BoundaryMode::kRealRegion);
  ExpectSameDecomposition(left, right);
}

TEST(MovdAlgebraTest, IdentityElement) {
  // Property 12: M ⊕ MOVD(∅) = M.
  const Movd m = BasicMovd(15, 0, 97);
  const Movd id = IdentityMovd(kBounds);
  ExpectSameDecomposition(m, Overlap(m, id, BoundaryMode::kRealRegion));
  ExpectSameDecomposition(m, Overlap(id, m, BoundaryMode::kRealRegion));
}

TEST(MovdAlgebraTest, AbsorptionOfContainedOperand) {
  // Property 14: if M_i = M_j ⊕ M_k then M_i ⊕ M_j = M_i.
  const Movd mj = BasicMovd(8, 0, 98);
  const Movd mk = BasicMovd(9, 1, 99);
  const Movd mi = Overlap(mj, mk, BoundaryMode::kRealRegion);
  const Movd again = Overlap(mi, mj, BoundaryMode::kRealRegion);
  ExpectSameDecomposition(mi, again);
}

TEST(MovdPropertyTest, SizeBoundedByProductOfInputs) {
  // Property 2: |MOVD(Ē)| <= prod |P_i|.
  const Movd a = BasicMovd(9, 0, 100);
  const Movd b = BasicMovd(11, 1, 101);
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion);
  EXPECT_LE(out.ovrs.size(), a.ovrs.size() * b.ovrs.size());
}

TEST(MovdPropertyTest, CoversSearchSpace) {
  // Property 3: the MOVD covers R (areas sum to |R|, no gaps at samples).
  const Movd a = BasicMovd(10, 0, 102);
  const Movd b = BasicMovd(10, 1, 103);
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion);
  double area = 0.0;
  for (const Ovr& ovr : out.ovrs) area += ovr.region.Area();
  EXPECT_NEAR(area, kBounds.Area(), 1e-5 * kBounds.Area());
  Rng rng(104);
  for (int i = 0; i < 100; ++i) {
    const Point q{rng.Uniform(1, 99), rng.Uniform(1, 99)};
    bool covered = false;
    for (const Ovr& ovr : out.ovrs) {
      if (ovr.region.Contains(q)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "(" << q.x << "," << q.y << ")";
  }
}

TEST(MovdPropertyTest, AtLeastAsManyRegionsAsEitherInput) {
  // Property 6: |MOVD(Ē)| >= |VD(P_i)|.
  const Movd a = BasicMovd(13, 0, 105);
  const Movd b = BasicMovd(17, 1, 106);
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion);
  EXPECT_GE(out.ovrs.size(), a.ovrs.size());
  EXPECT_GE(out.ovrs.size(), b.ovrs.size());
}

TEST(MovdPropertyTest, SingleSetMovdIsTheVoronoiDiagram) {
  // Property 7: MOVD({P}) = VD(P).
  Rng rng(107);
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  const auto vd = VoronoiDiagram::Build(pts, kBounds);
  std::vector<int32_t> ids(vd.sites().size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  const Movd m = MovdFromVoronoi(vd, 0, ids);
  ASSERT_EQ(m.ovrs.size(), vd.cells().size());
  for (size_t i = 0; i < m.ovrs.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.ovrs[i].region.Area(), vd.cells()[i].region.Area());
    EXPECT_EQ(m.ovrs[i].pois.size(), 1u);
  }
}

TEST(MovdPropertyTest, OverlapsOnlyOnBoundaries) {
  // Property 4: distinct OVR interiors are disjoint — sampled check.
  const Movd a = BasicMovd(8, 0, 108);
  const Movd b = BasicMovd(8, 1, 109);
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion);
  Rng rng(110);
  for (int i = 0; i < 200; ++i) {
    const Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    int owners = 0;
    for (const Ovr& ovr : out.ovrs) {
      if (ovr.region.Contains(q)) ++owners;
    }
    // Random points hit boundaries with probability zero.
    EXPECT_LE(owners, 1);
  }
}

}  // namespace
}  // namespace movd
