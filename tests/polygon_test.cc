#include <cmath>

#include <gtest/gtest.h>

#include "geom/hull.h"
#include "geom/polygon.h"
#include "util/rng.h"

namespace movd {
namespace {

ConvexPolygon UnitSquare() {
  return ConvexPolygon::FromRect(Rect(0, 0, 1, 1));
}

TEST(ConvexPolygonTest, FromRectBasics) {
  const ConvexPolygon p = UnitSquare();
  EXPECT_FALSE(p.Empty());
  EXPECT_EQ(p.VertexCount(), 4u);
  EXPECT_DOUBLE_EQ(p.Area(), 1.0);
  EXPECT_EQ(p.Centroid(), Point(0.5, 0.5));
  EXPECT_EQ(p.Bbox(), Rect(0, 0, 1, 1));
}

TEST(ConvexPolygonTest, EmptyFromEmptyRect) {
  EXPECT_TRUE(ConvexPolygon::FromRect(Rect()).Empty());
  EXPECT_DOUBLE_EQ(ConvexPolygon().Area(), 0.0);
}

TEST(ConvexPolygonTest, ContainsInteriorBoundaryExterior) {
  const ConvexPolygon p = UnitSquare();
  EXPECT_TRUE(p.Contains({0.5, 0.5}));
  EXPECT_TRUE(p.Contains({0.0, 0.5}));  // boundary counts
  EXPECT_TRUE(p.Contains({1.0, 1.0}));  // corner counts
  EXPECT_FALSE(p.Contains({1.5, 0.5}));
  EXPECT_FALSE(p.Contains({-0.1, -0.1}));
}

TEST(ConvexPolygonTest, HalfPlaneClipCutsSquareInHalf) {
  ConvexPolygon p = UnitSquare();
  // Keep the half-plane left of the upward vertical line x = 0.5.
  p.ClipByHalfPlane({0.5, 0.0}, {0.5, 1.0});
  EXPECT_DOUBLE_EQ(p.Area(), 0.5);
  EXPECT_TRUE(p.Contains({0.25, 0.5}));
  EXPECT_FALSE(p.Contains({0.75, 0.5}));
}

TEST(ConvexPolygonTest, ClipAwayEverything) {
  ConvexPolygon p = UnitSquare();
  // Keep left of the downward line at x = 2, i.e. the region x >= 2.
  p.ClipByHalfPlane({2.0, 1.0}, {2.0, 0.0});
  EXPECT_TRUE(p.Empty());
}

TEST(ConvexPolygonTest, ClipThatMissesLeavesPolygonIntact) {
  ConvexPolygon p = UnitSquare();
  p.ClipByHalfPlane({-1.0, 1.0}, {-1.0, 0.0});  // square entirely left
  EXPECT_DOUBLE_EQ(p.Area(), 1.0);
}

TEST(ConvexPolygonTest, DiagonalClipProducesTriangle) {
  ConvexPolygon p = UnitSquare();
  p.ClipByHalfPlane({0.0, 0.0}, {1.0, 1.0});  // keep upper-left triangle
  EXPECT_DOUBLE_EQ(p.Area(), 0.5);
  EXPECT_EQ(p.VertexCount(), 3u);
}

TEST(ConvexPolygonTest, IntersectOverlappingSquares) {
  const ConvexPolygon a = UnitSquare();
  const ConvexPolygon b = ConvexPolygon::FromRect(Rect(0.5, 0.5, 1.5, 1.5));
  const ConvexPolygon i = ConvexPolygon::Intersect(a, b);
  EXPECT_DOUBLE_EQ(i.Area(), 0.25);
  EXPECT_EQ(i.Bbox(), Rect(0.5, 0.5, 1.0, 1.0));
}

TEST(ConvexPolygonTest, IntersectDisjointIsEmpty) {
  const ConvexPolygon a = UnitSquare();
  const ConvexPolygon b = ConvexPolygon::FromRect(Rect(2, 2, 3, 3));
  EXPECT_TRUE(ConvexPolygon::Intersect(a, b).Empty());
}

TEST(ConvexPolygonTest, IntersectContainedReturnsInner) {
  const ConvexPolygon outer = ConvexPolygon::FromRect(Rect(-5, -5, 5, 5));
  const ConvexPolygon inner = UnitSquare();
  const ConvexPolygon i = ConvexPolygon::Intersect(outer, inner);
  EXPECT_DOUBLE_EQ(i.Area(), 1.0);
}

TEST(ConvexPolygonTest, IntersectionAreaIsCommutative) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect ra(rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(5, 10),
                  rng.Uniform(5, 10));
    const Rect rb(rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(5, 10),
                  rng.Uniform(5, 10));
    ConvexPolygon a = ConvexPolygon::FromRect(ra);
    ConvexPolygon b = ConvexPolygon::FromRect(rb);
    // Cut corners to make them octagons.
    a.ClipByHalfPlane({ra.min_x + 1, ra.min_y}, {ra.min_x, ra.min_y + 1});
    b.ClipByHalfPlane({rb.max_x, rb.max_y - 1}, {rb.max_x - 1, rb.max_y});
    const double ab = ConvexPolygon::Intersect(a, b).Area();
    const double ba = ConvexPolygon::Intersect(b, a).Area();
    EXPECT_NEAR(ab, ba, 1e-9 * std::max(1.0, ab));
  }
}

TEST(ConvexPolygonTest, SliverDropping) {
  ConvexPolygon p({{0, 0}, {1, 0}, {1, 1e-12}});
  EXPECT_FALSE(p.Empty());
  p.DropIfSliver(1e-9);
  EXPECT_TRUE(p.Empty());
}

TEST(PolygonTest, OrientationNormalisedToCcw) {
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});  // given clockwise
  EXPECT_GT(cw.SignedArea(), 0.0);                     // stored CCW
  EXPECT_DOUBLE_EQ(cw.SignedArea(), 1.0);
}

TEST(PolygonTest, ConvexityDetection) {
  EXPECT_TRUE(Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}).IsConvex());
  // An L-shape is concave.
  EXPECT_FALSE(
      Polygon({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}).IsConvex());
}

TEST(PolygonTest, ContainsForConcaveShape) {
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l.Contains({0.5, 0.5}));
  EXPECT_TRUE(l.Contains({1.5, 0.5}));
  EXPECT_TRUE(l.Contains({0.5, 1.5}));
  EXPECT_FALSE(l.Contains({1.5, 1.5}));  // the notch
  EXPECT_TRUE(l.Contains({1.0, 1.0}));   // reflex corner on boundary
}

TEST(PolygonTest, TriangulatePreservesArea) {
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  const auto tris = l.Triangulate();
  EXPECT_EQ(tris.size(), 4u);  // n - 2 triangles for a simple hexagon
  double area = 0.0;
  for (const ConvexPolygon& t : tris) area += t.Area();
  EXPECT_NEAR(area, 3.0, 1e-12);
}

TEST(PolygonTest, TriangulateRandomStarShapes) {
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    // Star-shaped polygon: random radii at sorted angles around a center.
    std::vector<Point> ring;
    const int n = 6 + static_cast<int>(rng.NextBelow(10));
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n;
      const double radius = rng.Uniform(0.5, 2.0);
      ring.push_back({radius * std::cos(angle), radius * std::sin(angle)});
    }
    const Polygon poly(ring);
    const auto tris = poly.Triangulate();
    EXPECT_EQ(tris.size(), static_cast<size_t>(n - 2));
    double area = 0.0;
    for (const ConvexPolygon& t : tris) area += t.Area();
    EXPECT_NEAR(area, poly.SignedArea(), 1e-9);
  }
}

TEST(RegionTest, FromConvexAndContains) {
  const Region r = Region::FromConvex(UnitSquare());
  EXPECT_FALSE(r.Empty());
  EXPECT_DOUBLE_EQ(r.Area(), 1.0);
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_FALSE(r.Contains({2.0, 2.0}));
}

TEST(RegionTest, IntersectConvexPair) {
  const Region a = Region::FromRect(Rect(0, 0, 2, 2));
  const Region b = Region::FromRect(Rect(1, 1, 3, 3));
  const Region i = Region::Intersect(a, b);
  EXPECT_DOUBLE_EQ(i.Area(), 1.0);
  EXPECT_EQ(i.Bbox(), Rect(1, 1, 2, 2));
}

TEST(RegionTest, IntersectWithConcaveRegion) {
  // L-shape ∩ square covering the notch area only partially.
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  const Region rl = Region::FromPolygon(l);
  EXPECT_NEAR(rl.Area(), 3.0, 1e-12);
  const Region sq = Region::FromRect(Rect(0.5, 0.5, 1.5, 1.5));
  const Region i = Region::Intersect(rl, sq);
  // Square area 1.0 minus the quarter overlapping the notch.
  EXPECT_NEAR(i.Area(), 0.75, 1e-9);
}

TEST(RegionTest, BoundaryOnlyOverlapIsDroppedAsSliver) {
  const Region a = Region::FromRect(Rect(0, 0, 1, 1));
  const Region b = Region::FromRect(Rect(1, 0, 2, 1));  // shares an edge
  EXPECT_TRUE(Region::Intersect(a, b).Empty());
}

TEST(RegionTest, VertexCountSumsPieces) {
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  const Region r = Region::FromPolygon(l);
  EXPECT_EQ(r.pieces().size(), 4u);
  EXPECT_EQ(r.VertexCount(), 12u);  // 4 triangles
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const ConvexPolygon hull = ConvexHull(
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}});
  EXPECT_EQ(hull.VertexCount(), 4u);
  EXPECT_DOUBLE_EQ(hull.Area(), 1.0);
}

TEST(ConvexHullTest, CollinearInputIsEmpty) {
  EXPECT_TRUE(ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).Empty());
  EXPECT_TRUE(ConvexHull({{0, 0}, {1, 1}}).Empty());
}

TEST(ConvexHullTest, HullContainsAllInputPoints) {
  Rng rng(23);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.NextGaussian(), rng.NextGaussian()});
  }
  const ConvexPolygon hull = ConvexHull(pts);
  ASSERT_FALSE(hull.Empty());
  for (const Point& p : pts) {
    EXPECT_TRUE(hull.Contains(p));
  }
}

TEST(ConvexHullTest, CollinearEdgePointsExcluded) {
  const ConvexPolygon hull =
      ConvexHull({{0, 0}, {2, 0}, {1, 0}, {2, 2}, {0, 2}, {1, 2}});
  EXPECT_EQ(hull.VertexCount(), 4u);
}

}  // namespace
}  // namespace movd
