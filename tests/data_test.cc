#include <cstdio>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generate.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 1000, 1000);

TEST(GenerateTest, UniformCountAndBounds) {
  GeneratorConfig c;
  c.distribution = Distribution::kUniform;
  c.count = 500;
  c.bounds = kBounds;
  c.seed = 7;
  const auto pts = GeneratePoints(c);
  EXPECT_EQ(pts.size(), 500u);
  for (const Point& p : pts) {
    EXPECT_TRUE(kBounds.Contains(p));
  }
}

TEST(GenerateTest, DeterministicInSeed) {
  GeneratorConfig c;
  c.count = 100;
  c.seed = 42;
  EXPECT_EQ(GeneratePoints(c), GeneratePoints(c));
  c.seed = 43;
  const auto other = GeneratePoints(c);
  GeneratorConfig c42 = c;
  c42.seed = 42;
  EXPECT_NE(GeneratePoints(c42), other);
}

TEST(GenerateTest, ClustersAreMoreConcentratedThanUniform) {
  GeneratorConfig u;
  u.count = 2000;
  u.bounds = kBounds;
  u.seed = 8;
  GeneratorConfig g = u;
  g.distribution = Distribution::kGaussianClusters;
  g.clusters = 4;
  g.spread_fraction = 0.01;
  const auto uniform = GeneratePoints(u);
  const auto clustered = GeneratePoints(g);
  // Compare mean nearest-grid-cell occupancy: clustered data occupies far
  // fewer distinct coarse cells.
  const auto occupied = [](const std::vector<Point>& pts) {
    std::vector<bool> cell(400, false);
    for (const Point& p : pts) {
      const int gx = std::min(19, static_cast<int>(p.x / 50.0));
      const int gy = std::min(19, static_cast<int>(p.y / 50.0));
      cell[gy * 20 + gx] = true;
    }
    int n = 0;
    for (const bool b : cell) n += b;
    return n;
  };
  EXPECT_LT(occupied(clustered), occupied(uniform) / 2);
}

TEST(GenerateTest, CorridorFollowsLines) {
  GeneratorConfig c;
  c.distribution = Distribution::kCorridor;
  c.count = 1000;
  c.bounds = kBounds;
  c.clusters = 2;
  c.spread_fraction = 0.005;
  c.seed = 9;
  const auto pts = GeneratePoints(c);
  EXPECT_EQ(pts.size(), 1000u);
  for (const Point& p : pts) EXPECT_TRUE(kBounds.Contains(p));
}

TEST(GeoNamesCatalogTest, MatchesThePaperCardinalities) {
  const auto& catalog = GeoNamesLikeCatalog();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_EQ(catalog[0].name, "STM");
  EXPECT_EQ(catalog[0].full_count, 230762u);
  EXPECT_EQ(catalog[1].name, "CH");
  EXPECT_EQ(catalog[1].full_count, 225553u);
  EXPECT_EQ(catalog[2].name, "SCH");
  EXPECT_EQ(catalog[2].full_count, 200996u);
  EXPECT_EQ(catalog[3].name, "PPL");
  EXPECT_EQ(catalog[3].full_count, 166788u);
  EXPECT_EQ(catalog[4].name, "BLDG");
  EXPECT_EQ(catalog[4].full_count, 110289u);
}

TEST(GeoNamesCatalogTest, ClassesAreIndependentlySeeded) {
  const auto stm = SamplePoiClass("STM", 50, kBounds, 1);
  const auto ch = SamplePoiClass("CH", 50, kBounds, 1);
  EXPECT_NE(stm, ch);
  EXPECT_EQ(stm, SamplePoiClass("STM", 50, kBounds, 1));
}

TEST(CsvTest, RoundTripsExactDoubles) {
  const std::vector<Point> pts = {{0.1, 0.2},
                                  {1e-300, -1e300},
                                  {123456.789012345, -0.000123456789}};
  const std::string path = ::testing::TempDir() + "/pts.csv";
  ASSERT_TRUE(SavePointsCsv(path, pts));
  const auto loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ((*loaded)[i], pts[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ToleratesHeaderRow) {
  const std::string path = ::testing::TempDir() + "/hdr.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("x,y\n1.5,2.5\n", f);
  std::fclose(f);
  const auto loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0], Point(1.5, 2.5));
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1.5;2.5\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadPointsCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadPointsCsv("/nonexistent/definitely/missing.csv"));
}

TEST(ObjectsCsvTest, RoundTripsWeights) {
  std::vector<SpatialObject> objects(3);
  objects[0] = {{1.5, 2.5}, 3.0, 0.5};
  objects[1] = {{-7.25, 0.0}, 1.0, 1.0};
  objects[2] = {{1e6, -1e-6}, 0.125, 8.0};
  const std::string path = ::testing::TempDir() + "/objs.csv";
  ASSERT_TRUE(SaveObjectsCsv(path, objects));
  const auto loaded = LoadObjectsCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*loaded)[i].location, objects[i].location);
    EXPECT_EQ((*loaded)[i].type_weight, objects[i].type_weight);
    EXPECT_EQ((*loaded)[i].object_weight, objects[i].object_weight);
  }
  std::remove(path.c_str());
}

TEST(ObjectsCsvTest, WeightsDefaultToOne) {
  const std::string path = ::testing::TempDir() + "/plain.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("x,y\n3.0,4.0\n5.0,6.0,2.5\n", f);
  std::fclose(f);
  const auto loaded = LoadObjectsCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].type_weight, 1.0);
  EXPECT_EQ((*loaded)[0].object_weight, 1.0);
  EXPECT_EQ((*loaded)[1].type_weight, 2.5);
  EXPECT_EQ((*loaded)[1].object_weight, 1.0);
  std::remove(path.c_str());
}

TEST(ObjectsCsvTest, RejectsMalformedWeightRows) {
  const std::string path = ::testing::TempDir() + "/badw.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1.0,2.0,notanumber\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadObjectsCsv(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace movd
