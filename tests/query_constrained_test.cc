// Tests of constrained MOLQ (src/query/constrained): the overlay clipper
// must honor boundary polygons fully inside / outside / straddling the
// search space and treat zero-area exclusions as documented no-ops; the
// piecewise optimizer must agree with an independent grid reference across
// seeds, move the answer onto clip edges when the free optimum is
// excluded, stay bit-identical across thread counts, and satisfy the
// audit validator (which must also catch infeasible tampering).

#include <cmath>

#include <gtest/gtest.h>

#include "audit/audit_query.h"
#include "core/molq.h"
#include "core/weighted_distance.h"
#include "model/query_model.h"
#include "query/constrained.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery RandomQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    const double type_weight = rng.Uniform(0.5, 3.0);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = type_weight;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

Movd BuildRrbOverlay(const MolqQuery& query) {
  std::vector<Movd> basic;
  for (int32_t s = 0; s < static_cast<int32_t>(query.sets.size()); ++s) {
    basic.push_back(BuildBasicMovd(query, s, kBounds, 64));
  }
  return OverlapAll(basic, BoundaryMode::kRealRegion);
}

Polygon Box(double x0, double y0, double x1, double y1) {
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

TEST(ValidateConstraintTest, RejectsMalformedRings) {
  // Clockwise input is normalised to CCW by the Polygon constructor, so a
  // CW spec validates (as the normalised ring) rather than erroring.
  QueryConstraint cw;
  cw.boundary = Polygon({{0, 0}, {0, 10}, {10, 10}, {10, 0}});  // clockwise
  EXPECT_GT(cw.boundary.SignedArea(), 0.0);
  EXPECT_TRUE(ValidateConstraint(cw).ok());

  QueryConstraint zero_area_boundary;
  zero_area_boundary.boundary = Polygon({{0, 0}, {10, 0}, {20, 0}});
  EXPECT_FALSE(ValidateConstraint(zero_area_boundary).ok());

  // Fewer than three vertices cannot form a ring; the Polygon constructor
  // clears such input to empty, which validates as "no boundary".
  QueryConstraint few_vertices;
  few_vertices.boundary = Polygon({{0, 0}, {10, 0}});
  EXPECT_TRUE(few_vertices.boundary.Empty());
  EXPECT_TRUE(ValidateConstraint(few_vertices).ok());

  // A zero-area (collinear) exclusion is a documented no-op, not an error.
  QueryConstraint degenerate_exclusion;
  degenerate_exclusion.exclusions.push_back(
      Polygon({{0, 0}, {10, 0}, {20, 0}}));
  EXPECT_TRUE(ValidateConstraint(degenerate_exclusion).ok());

  QueryConstraint good;
  good.boundary = Box(10, 10, 90, 90);
  good.exclusions.push_back(Box(20, 20, 30, 30));
  EXPECT_TRUE(ValidateConstraint(good).ok());
}

TEST(ConstrainedTest, BoundaryFullyInsideRestrictsTheAnswer) {
  const MolqQuery q = RandomQuery({4, 4}, 700);
  const Movd movd = BuildRrbOverlay(q);
  QueryConstraint c;
  c.boundary = Box(10, 10, 60, 60);
  const ConstrainedMolqResult r =
      ConstrainedMolqFromMovd(q, movd, c, kBounds);
  ASSERT_EQ(r.status, StatusCode::kOk);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(c.boundary.Contains(r.best.location));
  EXPECT_GT(r.clipped_ovrs, 0u);
}

TEST(ConstrainedTest, BoundaryFullyOutsideIsInfeasible) {
  const MolqQuery q = RandomQuery({4, 4}, 701);
  const Movd movd = BuildRrbOverlay(q);
  QueryConstraint c;
  c.boundary = Box(200, 200, 300, 300);  // disjoint from kBounds
  const ConstrainedMolqResult r =
      ConstrainedMolqFromMovd(q, movd, c, kBounds);
  ASSERT_EQ(r.status, StatusCode::kOk);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.clipped_ovrs, 0u);
  EXPECT_TRUE(r.best.group.empty());
  EXPECT_TRUE(AuditConstrainedMolq(q, c, kBounds, r).ok());
}

TEST(ConstrainedTest, BoundaryStraddlingTheSearchSpaceClipsToIt) {
  const MolqQuery q = RandomQuery({4, 4}, 702);
  const Movd movd = BuildRrbOverlay(q);
  QueryConstraint c;
  c.boundary = Box(50, -50, 150, 50);  // only [50,100]x[0,50] is in-bounds
  const ConstrainedMolqResult r =
      ConstrainedMolqFromMovd(q, movd, c, kBounds);
  ASSERT_EQ(r.status, StatusCode::kOk);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(c.boundary.Contains(r.best.location));
  EXPECT_TRUE(kBounds.Contains(r.best.location));
  EXPECT_TRUE(AuditConstrainedMolq(q, c, kBounds, r).ok());
}

TEST(ConstrainedTest, ZeroAreaExclusionIsANoOp) {
  const MolqQuery q = RandomQuery({4, 3}, 703);
  const Movd movd = BuildRrbOverlay(q);
  QueryConstraint base;
  base.boundary = Box(5, 5, 95, 95);
  QueryConstraint with_sliver = base;
  with_sliver.exclusions.push_back(Polygon({{10, 10}, {50, 50}, {90, 90}}));
  const ConstrainedMolqResult a =
      ConstrainedMolqFromMovd(q, movd, base, kBounds);
  const ConstrainedMolqResult b =
      ConstrainedMolqFromMovd(q, movd, with_sliver, kBounds);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(a.best.location.x, b.best.location.x);
  EXPECT_EQ(a.best.location.y, b.best.location.y);
  EXPECT_EQ(a.best.cost, b.best.cost);
  EXPECT_EQ(a.clipped_ovrs, b.clipped_ovrs);
  EXPECT_EQ(a.boundary_solves, b.boundary_solves);
}

TEST(ConstrainedTest, ExclusionCoveringTheOptimumForcesABoundarySolve) {
  const MolqQuery q = RandomQuery({4, 4}, 704);
  const Movd movd = BuildRrbOverlay(q);
  // Locate the unconstrained optimum, then exclude a box around it.
  QueryConstraint free;
  free.boundary = Box(0, 0, 100, 100);
  const ConstrainedMolqResult unconstrained =
      ConstrainedMolqFromMovd(q, movd, free, kBounds);
  ASSERT_TRUE(unconstrained.feasible);
  const Point opt = unconstrained.best.location;
  QueryConstraint c;
  c.exclusions.push_back(
      Box(opt.x - 10.0, opt.y - 10.0, opt.x + 10.0, opt.y + 10.0));
  const ConstrainedMolqResult r =
      ConstrainedMolqFromMovd(q, movd, c, kBounds);
  ASSERT_EQ(r.status, StatusCode::kOk);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.boundary_solves, 0u);
  EXPECT_GE(r.best.cost, unconstrained.best.cost);
  // The answer sits outside the exclusion's interior (closed-set
  // semantics: its edges remain feasible, so allow the boundary).
  const Polygon& ex = c.exclusions[0];
  const bool strictly_inside = ex.Contains(r.best.location) &&
                               std::abs(r.best.location.x - (opt.x - 10.0)) >
                                   1e-9 &&
                               std::abs(r.best.location.x - (opt.x + 10.0)) >
                                   1e-9 &&
                               std::abs(r.best.location.y - (opt.y - 10.0)) >
                                   1e-9 &&
                               std::abs(r.best.location.y - (opt.y + 10.0)) >
                                   1e-9;
  EXPECT_FALSE(strictly_inside);
  EXPECT_TRUE(AuditConstrainedMolq(q, c, kBounds, r).ok());
}

TEST(ConstrainedTest, AgreesWithGridReferenceAcrossSeeds) {
  // The optimizer against an independent lattice scan: on a resolution-R
  // lattice the best grid cost can exceed the true constrained optimum by
  // at most the cost variation across one cell, so the optimizer must
  // never be worse than the reference and never better by more than the
  // lattice tolerance... and the reference in turn bounds the optimizer's
  // cost from above.
  const int resolution = 161;  // 0.625 lattice step on [0,100]^2
  int feasible_cases = 0;
  for (uint64_t seed = 710; seed < 734; ++seed) {
    const MolqQuery q = RandomQuery({3, 3}, seed);
    const Movd movd = BuildRrbOverlay(q);
    Rng rng(seed * 7 + 1);
    QueryConstraint c;
    const double x0 = rng.Uniform(0, 40), y0 = rng.Uniform(0, 40);
    c.boundary = Box(x0, y0, x0 + rng.Uniform(30, 55), y0 + rng.Uniform(30, 55));
    const double ex = rng.Uniform(10, 70), ey = rng.Uniform(10, 70);
    c.exclusions.push_back(Box(ex, ey, ex + 15, ey + 15));
    const ConstrainedMolqResult r =
        ConstrainedMolqFromMovd(q, movd, c, kBounds);
    const ConstrainedGridReferenceResult ref =
        ConstrainedGridReference(q, c, kBounds, resolution);
    ASSERT_EQ(r.status, StatusCode::kOk) << "seed " << seed;
    if (!ref.feasible) {
      // The whole feasible set can be thinner than the lattice; the
      // optimizer may still find it, but the reference has nothing to say.
      continue;
    }
    ASSERT_TRUE(r.feasible) << "seed " << seed;
    ++feasible_cases;
    // Reference lattice points are feasible, so their best cost bounds the
    // true constrained optimum from above (up to FW epsilon slack).
    EXPECT_LE(r.best.cost, ref.cost + 1e-6 * (1.0 + ref.cost))
        << "seed " << seed;
    // And the optimizer cannot beat the true optimum, which the lattice
    // approaches within one cell's cost variation (Lipschitz constant =
    // total weight; be generous and only require agreement at lattice
    // scale).
    const double step = 100.0 / (resolution - 1);
    double weight_sum = 0.0;
    for (size_t s = 0; s < q.sets.size(); ++s) {
      double max_w = 0.0;
      for (const SpatialObject& obj : q.sets[s].objects) {
        max_w = std::max(max_w, obj.type_weight * obj.object_weight);
      }
      weight_sum += max_w;
    }
    EXPECT_GE(r.best.cost,
              ref.cost - 2.0 * step * weight_sum - 1e-6 * (1.0 + ref.cost))
        << "seed " << seed;
    EXPECT_TRUE(AuditConstrainedMolq(q, c, kBounds, r).ok())
        << "seed " << seed;
  }
  // The random boxes must have produced a meaningful number of feasible
  // comparisons, or the test is vacuous.
  EXPECT_GE(feasible_cases, 15);
}

TEST(ConstrainedTest, BitIdenticalAcrossThreadCounts) {
  const MolqQuery q = RandomQuery({5, 4}, 740);
  const Movd movd = BuildRrbOverlay(q);
  QueryConstraint c;
  c.boundary = Box(15, 15, 85, 85);
  c.exclusions.push_back(Box(40, 40, 60, 60));
  CandidateOptions serial;
  const Region feasible = BuildFeasibleRegion(c, kBounds);
  const Movd clipped = ClipMovdToFeasible(movd, feasible);
  const ConstrainedMolqResult base =
      ConstrainedFromClippedMovd(q, clipped, serial);
  for (const int threads : {2, 4, 8}) {
    CandidateOptions par;
    par.exec.threads = threads;
    const ConstrainedMolqResult r =
        ConstrainedFromClippedMovd(q, clipped, par);
    EXPECT_EQ(r.feasible, base.feasible);
    EXPECT_EQ(r.best.location.x, base.best.location.x);
    EXPECT_EQ(r.best.location.y, base.best.location.y);
    EXPECT_EQ(r.best.cost, base.best.cost);
    EXPECT_EQ(r.boundary_solves, base.boundary_solves);
  }
}

TEST(ConstrainedTest, AuditCatchesTampering) {
  const MolqQuery q = RandomQuery({4, 4}, 750);
  const Movd movd = BuildRrbOverlay(q);
  QueryConstraint c;
  c.boundary = Box(10, 10, 90, 90);
  c.exclusions.push_back(Box(40, 40, 60, 60));
  const ConstrainedMolqResult r =
      ConstrainedMolqFromMovd(q, movd, c, kBounds);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(AuditConstrainedMolq(q, c, kBounds, r).ok());

  // Moving the answer deep into the exclusion violates feasibility.
  ConstrainedMolqResult bad_location = r;
  bad_location.best.location = {50.0, 50.0};
  EXPECT_FALSE(AuditConstrainedMolq(q, c, kBounds, bad_location).ok());

  // Corrupting the cost violates the independent recomputation.
  ConstrainedMolqResult bad_cost = r;
  bad_cost.best.cost += 1.0;
  EXPECT_FALSE(AuditConstrainedMolq(q, c, kBounds, bad_cost).ok());

  // An "infeasible" result that still carries an answer is inconsistent.
  ConstrainedMolqResult bad_flag = r;
  bad_flag.feasible = false;
  EXPECT_FALSE(AuditConstrainedMolq(q, c, kBounds, bad_flag).ok());
}

}  // namespace
}  // namespace movd
