#include <gtest/gtest.h>

#include "core/grid_scan.h"
#include "core/molq.h"
#include "core/pruned_overlap.h"
#include "core/weighted_distance.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery RandomQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    const double type_weight = rng.Uniform(0.5, 10.0);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = type_weight;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

TEST(SeedUpperBoundTest, UpperBoundsTheOptimum) {
  const MolqQuery q = RandomQuery({6, 6, 6}, 301);
  const double seed = SeedUpperBound(q, kBounds);
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto exact = SolveMolq(q, kBounds, opts);
  EXPECT_GE(seed, exact.cost);
  // And it is a real MWGD value, so the fine grid scan can only be better
  // or equal.
  EXPECT_LE(GridScanMolq(q, kBounds, 40).cost, seed + 1e-9);
}

TEST(CombinationLowerBoundTest, NeverExceedsAnyLocationCost) {
  const MolqQuery q = RandomQuery({4, 4, 4}, 302);
  Rng rng(303);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PoiRef> pois;
    for (int32_t s = 0; s < 3; ++s) {
      pois.push_back({s, static_cast<int32_t>(rng.NextBelow(4))});
    }
    const double lb = CombinationLowerBound(q, pois);
    for (int probe = 0; probe < 10; ++probe) {
      const Point l{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      EXPECT_LE(lb, WeightedGroupDistance(q, l, pois) + 1e-9);
    }
  }
}

TEST(CombinationLowerBoundTest, MonotoneUnderExtension) {
  // Adding a type to a combination can only raise the bound (this is what
  // justifies pruning mid-chain).
  const MolqQuery q = RandomQuery({4, 4, 4}, 304);
  Rng rng(305);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<PoiRef> two = {{0, static_cast<int32_t>(rng.NextBelow(4))},
                               {1, static_cast<int32_t>(rng.NextBelow(4))}};
    std::vector<PoiRef> three = two;
    three.push_back({2, static_cast<int32_t>(rng.NextBelow(4))});
    EXPECT_LE(CombinationLowerBound(q, two),
              CombinationLowerBound(q, three) + 1e-12);
  }
}

class PrunedPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrunedPipelineTest, SameAnswerWithAndWithoutPruning) {
  const MolqQuery q = RandomQuery({5, 5, 4}, GetParam());
  MolqOptions base;
  base.algorithm = MolqAlgorithm::kRrb;
  base.epsilon = 1e-6;
  const auto plain = SolveMolq(q, kBounds, base);
  MolqOptions pruned = base;
  pruned.use_overlap_pruning = true;
  const auto fast = SolveMolq(q, kBounds, pruned);
  EXPECT_NEAR(plain.cost, fast.cost, 1e-6 * plain.cost + 1e-9);
  EXPECT_LE(fast.stats.final_ovrs, plain.stats.final_ovrs);

  MolqOptions mbrb = pruned;
  mbrb.algorithm = MolqAlgorithm::kMbrb;
  const auto fast_mbrb = SolveMolq(q, kBounds, mbrb);
  EXPECT_NEAR(plain.cost, fast_mbrb.cost, 1e-6 * plain.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedPipelineTest,
                         ::testing::Values(311, 312, 313, 314, 315));

TEST(PrunedPipelineTest, ActuallyPrunesOnSpreadOutData) {
  // Clustered, far-apart types make most cross-cluster combinations
  // obviously hopeless.
  MolqQuery q;
  Rng rng(316);
  for (int32_t s = 0; s < 3; ++s) {
    ObjectSet set;
    set.name = std::string("t") += std::to_string(s);
    for (int c = 0; c < 4; ++c) {  // four shared cluster centers
      const Point center{12.5 + 25.0 * c, 12.5 + 25.0 * c};
      for (int i = 0; i < 3; ++i) {
        SpatialObject obj;
        obj.location = {center.x + rng.Uniform(-3, 3),
                        center.y + rng.Uniform(-3, 3)};
        set.objects.push_back(obj);
      }
    }
    q.sets.push_back(std::move(set));
  }
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kMbrb;
  opts.use_overlap_pruning = true;
  const auto r = SolveMolq(q, kBounds, opts);
  EXPECT_GT(r.stats.pruned_ovrs, 0u);
}

}  // namespace
}  // namespace movd
