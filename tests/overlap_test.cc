#include <algorithm>

#include <gtest/gtest.h>

#include "model/movd_model.h"
#include "core/overlap.h"
#include "util/rng.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

Movd RandomBasicMovd(size_t sites, int32_t set, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < sites; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  const auto vd = VoronoiDiagram::Build(pts, kBounds);
  std::vector<int32_t> ids(vd.sites().size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  return MovdFromVoronoi(vd, set, ids);
}

// Canonical form for comparing MOVDs: (sorted pois, rounded mbr) pairs.
std::vector<std::string> Canonicalize(const Movd& movd) {
  std::vector<std::string> keys;
  for (const Ovr& ovr : movd.ovrs) {
    std::string k;
    for (const PoiRef& p : ovr.pois) {
      k += std::to_string(p.set) + ":" + std::to_string(p.object) + ";";
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "|%.6f,%.6f,%.6f,%.6f", ovr.mbr.min_x,
                  ovr.mbr.min_y, ovr.mbr.max_x, ovr.mbr.max_y);
    k += buf;
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(OverlapTest, IdentityLeavesMovdUnchanged) {
  const Movd m = RandomBasicMovd(10, 0, 71);
  const Movd id = IdentityMovd(kBounds);
  const Movd out = Overlap(m, id, BoundaryMode::kRealRegion);
  EXPECT_EQ(out.ovrs.size(), m.ovrs.size());
  double area = 0.0;
  for (const Ovr& ovr : out.ovrs) area += ovr.region.Area();
  EXPECT_NEAR(area, kBounds.Area(), 1e-6 * kBounds.Area());
}

TEST(OverlapTest, TwoBisectedHalvesGiveFourQuadrants) {
  // MOVD A: left/right halves; MOVD B: bottom/top halves.
  const auto va = VoronoiDiagram::Build({{25, 50}, {75, 50}}, kBounds);
  const auto vb = VoronoiDiagram::Build({{50, 25}, {50, 75}}, kBounds);
  const Movd a = MovdFromVoronoi(va, 0, {0, 1});
  const Movd b = MovdFromVoronoi(vb, 1, {0, 1});
  OverlapStats stats;
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion, &stats);
  EXPECT_EQ(out.ovrs.size(), 4u);
  EXPECT_EQ(stats.output_ovrs, 4u);
  for (const Ovr& ovr : out.ovrs) {
    EXPECT_NEAR(ovr.region.Area(), 2500.0, 1e-9);
    EXPECT_EQ(ovr.pois.size(), 2u);
    EXPECT_EQ(ovr.pois[0].set, 0);
    EXPECT_EQ(ovr.pois[1].set, 1);
  }
}

class SweepVsBruteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SweepVsBruteTest, RealRegionModeMatches) {
  const Movd a = RandomBasicMovd(GetParam(), 0, 72 + GetParam());
  const Movd b = RandomBasicMovd(GetParam() + 3, 1, 73 + GetParam());
  const Movd sweep = Overlap(a, b, BoundaryMode::kRealRegion);
  const Movd brute = OverlapBruteForce(a, b, BoundaryMode::kRealRegion);
  EXPECT_EQ(Canonicalize(sweep), Canonicalize(brute));
}

TEST_P(SweepVsBruteTest, MbrModeMatches) {
  const Movd a = RandomBasicMovd(GetParam(), 0, 74 + GetParam());
  const Movd b = RandomBasicMovd(GetParam() + 5, 1, 75 + GetParam());
  const Movd sweep = Overlap(a, b, BoundaryMode::kMbr);
  const Movd brute = OverlapBruteForce(a, b, BoundaryMode::kMbr);
  EXPECT_EQ(Canonicalize(sweep), Canonicalize(brute));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SweepVsBruteTest,
                         ::testing::Values(2, 5, 10, 40, 120));

TEST(OverlapTest, RrbOutputTilesTheBounds) {
  const Movd a = RandomBasicMovd(20, 0, 76);
  const Movd b = RandomBasicMovd(30, 1, 77);
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion);
  double area = 0.0;
  for (const Ovr& ovr : out.ovrs) area += ovr.region.Area();
  EXPECT_NEAR(area, kBounds.Area(), 1e-4 * kBounds.Area());
}

TEST(OverlapTest, MbrbProducesAtLeastAsManyOvrsAsRrb) {
  const Movd a = RandomBasicMovd(25, 0, 78);
  const Movd b = RandomBasicMovd(25, 1, 79);
  const Movd rrb = Overlap(a, b, BoundaryMode::kRealRegion);
  const Movd mbrb = Overlap(a, b, BoundaryMode::kMbr);
  // MBR hits are a superset of real-region hits (false positives).
  EXPECT_GE(mbrb.ovrs.size(), rrb.ovrs.size());
}

TEST(OverlapTest, MbrbMemorySmallerPerOvrThanRrb) {
  const Movd a = RandomBasicMovd(40, 0, 80);
  const Movd b = RandomBasicMovd(40, 1, 81);
  const Movd rrb = Overlap(a, b, BoundaryMode::kRealRegion);
  const Movd mbrb = Overlap(a, b, BoundaryMode::kMbr);
  const double rrb_per =
      static_cast<double>(rrb.MemoryBytes(BoundaryMode::kRealRegion)) /
      rrb.ovrs.size();
  const double mbrb_per =
      static_cast<double>(mbrb.MemoryBytes(BoundaryMode::kMbr)) /
      mbrb.ovrs.size();
  // Fig. 13: an MBR is two points; real regions average > 4 vertices.
  EXPECT_LT(mbrb_per, rrb_per);
}

TEST(OverlapTest, StatsCountersAreConsistent) {
  const Movd a = RandomBasicMovd(15, 0, 82);
  const Movd b = RandomBasicMovd(15, 1, 83);
  OverlapStats stats;
  const Movd out = Overlap(a, b, BoundaryMode::kRealRegion, &stats);
  EXPECT_EQ(stats.events, 2 * (a.ovrs.size() + b.ovrs.size()));
  EXPECT_EQ(stats.output_ovrs, out.ovrs.size());
  EXPECT_GE(stats.candidate_pairs, stats.output_ovrs);
  EXPECT_EQ(stats.region_intersections, stats.candidate_pairs);
}

TEST(OverlapTest, OverlapAllFoldsThreeDiagrams) {
  const std::vector<Movd> inputs = {RandomBasicMovd(6, 0, 84),
                                    RandomBasicMovd(6, 1, 85),
                                    RandomBasicMovd(6, 2, 86)};
  const Movd out = OverlapAll(inputs, BoundaryMode::kRealRegion);
  for (const Ovr& ovr : out.ovrs) {
    ASSERT_EQ(ovr.pois.size(), 3u);
    EXPECT_EQ(ovr.pois[0].set, 0);
    EXPECT_EQ(ovr.pois[1].set, 1);
    EXPECT_EQ(ovr.pois[2].set, 2);
  }
  double area = 0.0;
  for (const Ovr& ovr : out.ovrs) area += ovr.region.Area();
  EXPECT_NEAR(area, kBounds.Area(), 1e-4 * kBounds.Area());
}

TEST(OverlapTest, TouchingMbrsPairInMbrMode) {
  // Two OVRs sharing only a horizontal boundary line must still pair in
  // MBR mode (closed-rectangle semantics).
  Movd a, b;
  Ovr oa;
  oa.mbr = Rect(0, 0, 10, 5);
  oa.region = Region::FromRect(oa.mbr);
  oa.pois = {{0, 0}};
  a.ovrs.push_back(oa);
  Ovr ob;
  ob.mbr = Rect(0, 5, 10, 10);  // touches a at y = 5
  ob.region = Region::FromRect(ob.mbr);
  ob.pois = {{1, 0}};
  b.ovrs.push_back(ob);
  const Movd out = Overlap(a, b, BoundaryMode::kMbr);
  ASSERT_EQ(out.ovrs.size(), 1u);
  EXPECT_DOUBLE_EQ(out.ovrs[0].mbr.Area(), 0.0);
  // In real-region mode the sliver is dropped.
  const Movd out_rrb = Overlap(a, b, BoundaryMode::kRealRegion);
  EXPECT_TRUE(out_rrb.ovrs.empty());
}

}  // namespace
}  // namespace movd
