#include <gtest/gtest.h>

#include "core/ssc.h"
#include "core/topk.h"
#include "core/weighted_distance.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery RandomQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    const double type_weight = rng.Uniform(0.5, 5.0);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = type_weight;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

// Reference: per-combination optimal costs via SSC-style enumeration.
std::vector<double> AllCombinationCosts(const MolqQuery& q, double epsilon) {
  std::vector<double> costs;
  std::vector<int32_t> combo(q.sets.size(), 0);
  bool done = false;
  while (!done) {
    std::vector<PoiRef> group;
    for (size_t s = 0; s < combo.size(); ++s) {
      group.push_back({static_cast<int32_t>(s), combo[s]});
    }
    // Optimum of this combination via the single-problem path: reuse SSC
    // on a query restricted to the chosen objects.
    MolqQuery sub;
    for (size_t s = 0; s < q.sets.size(); ++s) {
      ObjectSet set;
      set.name = q.sets[s].name;
      set.objects = {q.sets[s].objects[combo[s]]};
      sub.sets.push_back(std::move(set));
    }
    SscOptions opts;
    opts.epsilon = epsilon;
    costs.push_back(SolveSsc(sub, opts).cost);
    size_t i = 0;
    while (i < combo.size()) {
      if (++combo[i] <
          static_cast<int32_t>(q.sets[i].objects.size())) {
        break;
      }
      combo[i] = 0;
      ++i;
    }
    done = i == combo.size();
  }
  std::sort(costs.begin(), costs.end());
  return costs;
}

TEST(TopKTest, TopOneMatchesSolveMolq) {
  const MolqQuery q = RandomQuery({4, 4, 4}, 401);
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = SolveMolqTopK(q, kBounds, 1, opts).ranked;
  ASSERT_EQ(top.size(), 1u);
  const auto single = SolveMolq(q, kBounds, opts);
  EXPECT_NEAR(top[0].cost, single.cost, 1e-9);
}

TEST(TopKTest, ResultsAscendAndAreDistinctCombinations) {
  const MolqQuery q = RandomQuery({5, 5}, 402);
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = SolveMolqTopK(q, kBounds, 5, opts).ranked;
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].cost, top[i].cost);
    EXPECT_NE(top[i - 1].group, top[i].group);
  }
}

TEST(TopKTest, MatchesExhaustiveRankingOnCoveredCombinations) {
  // Every top-k cost must appear in the exhaustive per-combination cost
  // list, and the first one must be the global optimum.
  const MolqQuery q = RandomQuery({3, 3, 3}, 403);
  MolqOptions opts;
  opts.epsilon = 1e-8;
  const auto top = SolveMolqTopK(q, kBounds, 4, opts).ranked;
  const auto all = AllCombinationCosts(q, 1e-8);
  ASSERT_GE(top.size(), 1u);
  EXPECT_NEAR(top[0].cost, all[0], 1e-4 * all[0] + 1e-9);
  for (const RankedLocation& r : top) {
    bool found = false;
    for (const double c : all) {
      if (std::abs(c - r.cost) <= 1e-4 * c + 1e-9) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << r.cost;
  }
}

TEST(TopKTest, KLargerThanCombinationsReturnsAll) {
  const MolqQuery q = RandomQuery({2, 2}, 404);
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = SolveMolqTopK(q, kBounds, 100, opts).ranked;
  // The MOVD only materialises co-occurring combinations, so the count is
  // at most 4 and at least 1.
  EXPECT_GE(top.size(), 1u);
  EXPECT_LE(top.size(), 4u);
}

// Two combinations tie at cost exactly 5: (A, C) and (B, D) both span a
// (3, 4) displacement, solved exactly by the two-point special case.
MolqQuery TiedPairQuery() {
  MolqQuery q;
  q.sets.resize(2);
  q.sets[0].name = "first";
  q.sets[1].name = "second";
  auto add = [](ObjectSet* set, Point at) {
    SpatialObject obj;
    obj.location = at;
    obj.type_weight = 1.0;
    obj.object_weight = 1.0;
    set->objects.push_back(obj);
  };
  add(&q.sets[0], {10, 10});  // A
  add(&q.sets[0], {60, 10});  // B
  add(&q.sets[1], {13, 14});  // C = A + (3, 4)
  add(&q.sets[1], {63, 14});  // D = B + (3, 4)
  return q;
}

TEST(TopKTest, TiedKthPlusOneIsNotPruned) {
  // With k = 1 the runner-up ties the winner exactly. The k-th-best bound
  // must be non-pruning on ties (strict comparison), so the tied candidate
  // is still fully examined and the reported optimum stays exact.
  const MolqQuery q = TiedPairQuery();
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top1 = SolveMolqTopK(q, kBounds, 1, opts).ranked;
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].cost, 5.0);
}

TEST(TopKTest, BothTiedGroupsAreRetained) {
  const MolqQuery q = TiedPairQuery();
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = SolveMolqTopK(q, kBounds, 2, opts).ranked;
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].cost, 5.0);
  EXPECT_EQ(top[1].cost, 5.0);
  EXPECT_NE(top[0].group, top[1].group);
  // Each tied answer genuinely achieves the minimum at its own location.
  EXPECT_EQ(MinWeightedGroupDistance(q, top[0].location), 5.0);
  EXPECT_EQ(MinWeightedGroupDistance(q, top[1].location), 5.0);
}

TEST(TopKTest, RanksBeyondTheTieStayOrdered) {
  const MolqQuery q = TiedPairQuery();
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = SolveMolqTopK(q, kBounds, 4, opts).ranked;
  // (A, D) co-occurs nowhere in the overlap, so at most 3 combinations
  // materialise; the two tied at 5 must lead.
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].cost, 5.0);
  EXPECT_EQ(top[1].cost, 5.0);
  for (size_t i = 2; i < top.size(); ++i) {
    EXPECT_GT(top[i].cost, 5.0);
  }
}

TEST(TopKTest, KLargerThanCombinationCountReturnsEveryCombination) {
  // Documented edge case: an oversized k is not an error — the ranking
  // simply ends when the distinct combinations run out, still ascending.
  const MolqQuery q = RandomQuery({2, 2}, 420);
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = SolveMolqTopK(q, kBounds, 99, opts).ranked;
  EXPECT_LE(top.size(), 4u);  // at most |set0| * |set1| combinations
  ASSERT_GE(top.size(), 1u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].cost, top[i].cost);
    EXPECT_NE(top[i - 1].group, top[i].group);
  }
  // Asking for even more changes nothing.
  const auto again = SolveMolqTopK(q, kBounds, 1000, opts).ranked;
  ASSERT_EQ(again.size(), top.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(again[i].cost, top[i].cost);
    EXPECT_EQ(again[i].group, top[i].group);
  }
}

// A hand-built MOVD whose every OVR pairs two co-located objects: each
// combination's optimum costs exactly 0.0, so ALL candidates tie and the
// ranking must fall back to the documented lexicographic group order.
TEST(TopKTest, AllCandidatesTiedRankInLexicographicGroupOrder) {
  MolqQuery q;
  for (int s = 0; s < 2; ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    for (int i = 0; i < 3; ++i) {
      SpatialObject obj;
      obj.location = {10.0 + 30.0 * i, 50.0};
      set.objects.push_back(obj);
    }
    q.sets.push_back(std::move(set));
  }
  Movd movd;
  // Insert in reverse group order to prove the ranking does not depend on
  // OVR scan order when every cost ties.
  for (int i = 2; i >= 0; --i) {
    Ovr ovr;
    const Rect cell(30.0 * i, 0, 30.0 * i + 30.0, 100);
    ovr.region = Region::FromRect(cell);
    ovr.mbr = cell;
    ovr.pois = {{0, i}, {1, i}};
    movd.ovrs.push_back(std::move(ovr));
  }
  MolqOptions opts;
  opts.epsilon = 1e-6;
  const auto top = TopKFromMovd(q, movd, 5, opts).ranked;
  ASSERT_EQ(top.size(), 3u);  // oversized k: every combination, once
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top[i].cost, 0.0);
    ASSERT_EQ(top[i].group.size(), 2u);
    EXPECT_EQ(top[i].group[0].object, static_cast<int32_t>(i));
    EXPECT_EQ(top[i].group[1].object, static_cast<int32_t>(i));
  }
}

TEST(TopKTest, DuplicateOvrsOfOneCombinationCollapse) {
  // MBRB-style false positives present the same poi combination through
  // several OVRs; the ranking must keep exactly one entry per combination
  // and be unaffected by the duplicates.
  const MolqQuery q = RandomQuery({3, 3}, 421);
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kMbrb;
  opts.epsilon = 1e-6;
  const auto ranked = SolveMolqTopK(q, kBounds, 9, opts).ranked;
  for (size_t i = 0; i < ranked.size(); ++i) {
    for (size_t j = i + 1; j < ranked.size(); ++j) {
      EXPECT_NE(ranked[i].group, ranked[j].group);
    }
  }
}

TEST(TopKTest, MbrbAgreesWithRrbOnTopCosts) {
  const MolqQuery q = RandomQuery({4, 4, 3}, 405);
  MolqOptions rrb;
  rrb.epsilon = 1e-6;
  MolqOptions mbrb = rrb;
  mbrb.algorithm = MolqAlgorithm::kMbrb;
  const auto a = SolveMolqTopK(q, kBounds, 3, rrb).ranked;
  const auto b = SolveMolqTopK(q, kBounds, 3, mbrb).ranked;
  ASSERT_GE(a.size(), 1u);
  ASSERT_GE(b.size(), 1u);
  // The winner must agree; deeper ranks may differ because MBRB's false
  // positives materialise more combinations.
  EXPECT_NEAR(a[0].cost, b[0].cost, 1e-6 * a[0].cost + 1e-9);
  EXPECT_GE(b.size(), a.size() > 3 ? 3u : a.size());
}

}  // namespace
}  // namespace movd
