#include <gtest/gtest.h>

#include "geom/gridcontour.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kUnit(0, 0, 8, 8);  // 8x8 world over an 8x8 grid: unit cells

std::vector<uint8_t> EmptyMask() { return std::vector<uint8_t>(64, 0); }

void Set(std::vector<uint8_t>* mask, int x, int y) {
  (*mask)[y * 8 + x] = 1;
}

double TotalArea(const std::vector<Polygon>& polys) {
  double a = 0.0;
  for (const Polygon& p : polys) a += p.SignedArea();
  return a;
}

TEST(GridContourTest, EmptyMaskYieldsNothing) {
  EXPECT_TRUE(ExtractOuterContours(EmptyMask(), 8, 8, kUnit).empty());
}

TEST(GridContourTest, SingleCellIsAUnitSquare) {
  auto mask = EmptyMask();
  Set(&mask, 3, 4);
  const auto polys = ExtractOuterContours(mask, 8, 8, kUnit);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_DOUBLE_EQ(polys[0].SignedArea(), 1.0);
  EXPECT_EQ(polys[0].Bbox(), Rect(3, 4, 4, 5));
  EXPECT_EQ(polys[0].vertices().size(), 4u);  // collinear runs merged
}

TEST(GridContourTest, RectangleBlockMergesCollinearEdges) {
  auto mask = EmptyMask();
  for (int y = 2; y < 6; ++y) {
    for (int x = 1; x < 7; ++x) Set(&mask, x, y);
  }
  const auto polys = ExtractOuterContours(mask, 8, 8, kUnit);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_DOUBLE_EQ(polys[0].SignedArea(), 24.0);
  EXPECT_EQ(polys[0].vertices().size(), 4u);
}

TEST(GridContourTest, LShapeHasSixCorners) {
  auto mask = EmptyMask();
  for (int x = 0; x < 4; ++x) Set(&mask, x, 0);
  for (int y = 0; y < 4; ++y) Set(&mask, 0, y);
  const auto polys = ExtractOuterContours(mask, 8, 8, kUnit);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_DOUBLE_EQ(polys[0].SignedArea(), 7.0);
  EXPECT_EQ(polys[0].vertices().size(), 6u);
}

TEST(GridContourTest, TwoComponentsTwoPolygons) {
  auto mask = EmptyMask();
  Set(&mask, 0, 0);
  Set(&mask, 7, 7);
  const auto polys = ExtractOuterContours(mask, 8, 8, kUnit);
  EXPECT_EQ(polys.size(), 2u);
  EXPECT_DOUBLE_EQ(TotalArea(polys), 2.0);
}

TEST(GridContourTest, DonutHoleIsAbsorbed) {
  auto mask = EmptyMask();
  for (int y = 1; y < 6; ++y) {
    for (int x = 1; x < 6; ++x) Set(&mask, x, y);
  }
  (*&mask)[3 * 8 + 3] = 0;  // hole in the middle
  const auto polys = ExtractOuterContours(mask, 8, 8, kUnit);
  ASSERT_EQ(polys.size(), 1u);
  // The outer ring covers the hole: area of the full 5x5 block.
  EXPECT_DOUBLE_EQ(polys[0].SignedArea(), 25.0);
  EXPECT_TRUE(polys[0].Contains({3.5, 3.5}));
}

TEST(GridContourTest, DilationGrowsCoverByOneCell) {
  auto mask = EmptyMask();
  Set(&mask, 4, 4);
  const auto polys =
      ExtractOuterContours(mask, 8, 8, kUnit, /*dilate=*/true);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_DOUBLE_EQ(polys[0].SignedArea(), 9.0);  // 3x3 block
  EXPECT_EQ(polys[0].Bbox(), Rect(3, 3, 6, 6));
}

TEST(GridContourTest, DilationClampedAtGridBorder) {
  auto mask = EmptyMask();
  Set(&mask, 0, 0);
  const auto polys =
      ExtractOuterContours(mask, 8, 8, kUnit, /*dilate=*/true);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_DOUBLE_EQ(polys[0].SignedArea(), 4.0);  // 2x2 corner block
}

TEST(GridContourTest, DiagonalTouchSplitsWithoutDilation) {
  auto mask = EmptyMask();
  Set(&mask, 2, 2);
  Set(&mask, 3, 3);
  const auto raw = ExtractOuterContours(mask, 8, 8, kUnit);
  EXPECT_DOUBLE_EQ(TotalArea(raw), 2.0);
  // With dilation, the pair merges into one component.
  const auto grown = ExtractOuterContours(mask, 8, 8, kUnit, true);
  ASSERT_GE(grown.size(), 1u);
  EXPECT_GT(TotalArea(grown), 10.0);
}

TEST(GridContourTest, RandomMasksConserveAreaAndCoverage) {
  Rng rng(1001);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> mask(64, 0);
    int cells = 0;
    for (auto& c : mask) {
      c = rng.NextDouble() < 0.4 ? 1 : 0;
      cells += c;
    }
    const auto polys = ExtractOuterContours(mask, 8, 8, kUnit);
    // Outer contours cover at least the occupied cells (holes only add).
    EXPECT_GE(TotalArea(polys), static_cast<double>(cells) - 1e-9);
    // Every occupied cell's center lies in some polygon.
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        if (!mask[y * 8 + x]) continue;
        const Point center{x + 0.5, y + 0.5};
        bool covered = false;
        for (const Polygon& p : polys) covered = covered || p.Contains(center);
        EXPECT_TRUE(covered) << "(" << x << "," << y << ") trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace movd
