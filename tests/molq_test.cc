// End-to-end tests of the MOLQ engine: SSC, RRB and MBRB must agree with
// each other and with a brute-force grid scan of MWGD; the worked example
// of the paper's Fig. 1 must reproduce; weighted variants stay consistent.

#include <cmath>

#include <gtest/gtest.h>

#include "core/grid_scan.h"
#include "core/molq.h"
#include "core/weighted_distance.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery RandomQuery(const std::vector<size_t>& sizes, uint64_t seed,
                      bool random_type_weights) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = random_type_weights ? rng.Uniform(0.1, 10.0) : 1.0;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

MolqResult Solve(const MolqQuery& q, MolqAlgorithm algo,
                 double epsilon = 1e-6) {
  MolqOptions opts;
  opts.algorithm = algo;
  opts.epsilon = epsilon;
  return SolveMolq(q, kBounds, opts);
}

TEST(WeightedDistanceTest, MultiplicativeComposition) {
  SpatialObject p;
  p.location = {3, 4};
  p.type_weight = 2.0;
  p.object_weight = 3.0;
  // WD = ((d * w_o) * w_t) = 5 * 3 * 2.
  EXPECT_DOUBLE_EQ(WeightedDistance({0, 0}, p,
                                    WeightFunctionKind::kMultiplicative,
                                    WeightFunctionKind::kMultiplicative),
                   30.0);
}

TEST(WeightedDistanceTest, AdditiveComposition) {
  SpatialObject p;
  p.location = {3, 4};
  p.type_weight = 2.0;
  p.object_weight = 3.0;
  // WD = (d + w_o) + w_t = 5 + 3 + 2.
  EXPECT_DOUBLE_EQ(
      WeightedDistance({0, 0}, p, WeightFunctionKind::kAdditive,
                       WeightFunctionKind::kAdditive),
      10.0);
}

TEST(WeightedDistanceTest, DecompositionMatchesDirectEvaluation) {
  Rng rng(111);
  const WeightFunctionKind kinds[] = {WeightFunctionKind::kMultiplicative,
                                      WeightFunctionKind::kAdditive};
  for (const auto type_fn : kinds) {
    for (const auto object_fn : kinds) {
      for (int i = 0; i < 50; ++i) {
        SpatialObject p;
        p.location = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
        p.type_weight = rng.Uniform(0.1, 5);
        p.object_weight = rng.Uniform(0.1, 5);
        const Point q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
        const auto term = DecomposeWeightedDistance(p, type_fn, object_fn);
        const double via_term =
            term.fw_weight * Distance(q, p.location) + term.offset;
        EXPECT_NEAR(via_term, WeightedDistance(q, p, type_fn, object_fn),
                    1e-12);
      }
    }
  }
}

TEST(WeightedDistanceTest, MwgdEqualsBruteForceMinimum) {
  const MolqQuery q = RandomQuery({4, 3, 3}, 112, /*random_type_weights=*/true);
  Rng rng(113);
  for (int trial = 0; trial < 20; ++trial) {
    const Point pt{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    // Brute force over the cartesian product.
    double best = std::numeric_limits<double>::infinity();
    for (int32_t a = 0; a < 4; ++a) {
      for (int32_t b = 0; b < 3; ++b) {
        for (int32_t c = 0; c < 3; ++c) {
          best = std::min(best, WeightedGroupDistance(q, pt, {a, b, c}));
        }
      }
    }
    EXPECT_NEAR(MinWeightedGroupDistance(q, pt), best, 1e-9);
  }
}

TEST(MolqFigure1Test, ReproducesTheWorkedExample) {
  // Paper Fig. 1: with unit weights Community 1 wins with total distance
  // 16 = 7 + 4 + 5; with the custom weights Community 3 wins with 33.
  // We model the three candidate communities as the query points and check
  // MWGD rankings; the data uses distances structured like the figure.
  MolqQuery query;
  query.sets.resize(3);
  query.sets[0].name = "school";
  query.sets[1].name = "bus";
  query.sets[2].name = "market";

  const Point c1{0, 0}, c2{40, 0}, c3{80, 0};
  // One object per type near each community, with distances chosen to
  // reproduce the figure's numbers exactly for the closest assignments.
  auto add = [](ObjectSet* set, Point at, double wt, double wo) {
    SpatialObject obj;
    obj.location = at;
    obj.type_weight = wt;
    obj.object_weight = wo;
    set->objects.push_back(obj);
  };
  // Distances from c1: school 7, bus 4, market 5  (sum 16).
  add(&query.sets[0], {0, 7}, 1, 1);
  add(&query.sets[1], {0, 4}, 1, 1);
  add(&query.sets[2], {0, 5}, 1, 1);
  // Distances from c2: school 8, bus 5, market 6  (sum 19).
  add(&query.sets[0], {40, 8}, 1, 1);
  add(&query.sets[1], {40, 5}, 1, 1);
  add(&query.sets[2], {40, 6}, 1, 1);
  // Distances from c3: school 5, bus 8, market 5  (sum 18).
  add(&query.sets[0], {80, 5}, 1, 1);
  add(&query.sets[1], {80, 8}, 1, 1);
  add(&query.sets[2], {80, 5}, 1, 1);

  EXPECT_DOUBLE_EQ(MinWeightedGroupDistance(query, c1), 16.0);
  EXPECT_DOUBLE_EQ(MinWeightedGroupDistance(query, c2), 19.0);
  EXPECT_DOUBLE_EQ(MinWeightedGroupDistance(query, c3), 18.0);

  // Custom weights, modelling the figure's outcome: the objects near
  // communities 1 and 2 get penalising type weights, community 3's get
  // preferential ones (school 3, bus 1, market 2 -> 5*3 + 8*1 + 5*2 = 33),
  // flipping the winner to community 3.
  for (int t = 0; t < 3; ++t) {
    query.sets[t].objects[0].type_weight = 3.0;  // near c1
    query.sets[t].objects[1].type_weight = 3.0;  // near c2
  }
  query.sets[0].objects[2].type_weight = 3.0;  // school near c3: 5*3 = 15
  query.sets[1].objects[2].type_weight = 1.0;  // bus near c3:    8*1 = 8
  query.sets[2].objects[2].type_weight = 2.0;  // market near c3: 5*2 = 10
  EXPECT_DOUBLE_EQ(WeightedGroupDistance(query, c3, {2, 2, 2}), 33.0);
  EXPECT_DOUBLE_EQ(MinWeightedGroupDistance(query, c3), 33.0);
  EXPECT_LT(MinWeightedGroupDistance(query, c3),
            MinWeightedGroupDistance(query, c1));
  EXPECT_LT(MinWeightedGroupDistance(query, c3),
            MinWeightedGroupDistance(query, c2));
}

class MolqAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MolqAgreementTest, SscRrbMbrbAgreeUnitWeights) {
  const MolqQuery q =
      RandomQuery({5, 4, 4}, GetParam(), /*random_type_weights=*/false);
  const auto ssc = Solve(q, MolqAlgorithm::kSsc);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  const auto mbrb = Solve(q, MolqAlgorithm::kMbrb);
  const double tol = 1e-4 * ssc.cost + 1e-9;
  EXPECT_NEAR(rrb.cost, ssc.cost, tol);
  EXPECT_NEAR(mbrb.cost, ssc.cost, tol);
}

TEST_P(MolqAgreementTest, SscRrbMbrbAgreeRandomTypeWeights) {
  const MolqQuery q =
      RandomQuery({4, 4, 3}, GetParam() + 1000, /*random_type_weights=*/true);
  const auto ssc = Solve(q, MolqAlgorithm::kSsc);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  const auto mbrb = Solve(q, MolqAlgorithm::kMbrb);
  const double tol = 1e-4 * ssc.cost + 1e-9;
  EXPECT_NEAR(rrb.cost, ssc.cost, tol);
  EXPECT_NEAR(mbrb.cost, ssc.cost, tol);
}

TEST_P(MolqAgreementTest, SolversBeatGridScan) {
  const MolqQuery q =
      RandomQuery({4, 3, 3}, GetParam() + 2000, /*random_type_weights=*/true);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  const auto grid = GridScanMolq(q, kBounds, 60);
  // The solver's optimum can only be better than the best grid point, and
  // the grid point bounds how far the solver could be from optimal.
  EXPECT_LE(rrb.cost, grid.cost * (1.0 + 1e-4) + 1e-9);
  // MWGD at the returned location must equal the reported cost.
  EXPECT_NEAR(MinWeightedGroupDistance(q, rrb.location), rrb.cost,
              1e-6 * rrb.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MolqAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MolqTest, TwoTypesOnly) {
  const MolqQuery q = RandomQuery({6, 6}, 114, true);
  const auto ssc = Solve(q, MolqAlgorithm::kSsc);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  EXPECT_NEAR(rrb.cost, ssc.cost, 1e-4 * ssc.cost + 1e-9);
}

TEST(MolqTest, SingleTypeReturnsAnObjectLocation) {
  // With one set, the optimum is at (one of) the objects themselves.
  const MolqQuery q = RandomQuery({5}, 115, false);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  EXPECT_NEAR(rrb.cost, 0.0, 1e-9);
}

TEST(MolqTest, FourTypesAgreement) {
  const MolqQuery q = RandomQuery({3, 3, 3, 3}, 116, true);
  const auto ssc = Solve(q, MolqAlgorithm::kSsc, 1e-3);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb, 1e-3);
  const auto mbrb = Solve(q, MolqAlgorithm::kMbrb, 1e-3);
  const double tol = 2e-3 * ssc.cost + 1e-9;
  EXPECT_NEAR(rrb.cost, ssc.cost, tol);
  EXPECT_NEAR(mbrb.cost, ssc.cost, tol);
}

TEST(MolqTest, ObjectWeightsRouteThroughWeightedDiagrams) {
  // Non-uniform object weights force the grid-approximated weighted
  // Voronoi path; results must still match SSC (which is exact in the
  // combinatorial sense).
  MolqQuery q = RandomQuery({4, 4}, 117, false);
  Rng rng(118);
  for (auto& set : q.sets) {
    for (auto& obj : set.objects) obj.object_weight = rng.Uniform(0.5, 2.0);
  }
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kMbrb;
  opts.epsilon = 1e-6;
  opts.exec.weighted_grid_resolution = 96;
  const auto mbrb = SolveMolq(q, kBounds, opts);
  const auto ssc = Solve(q, MolqAlgorithm::kSsc);
  // MBRB over approximated diagrams keeps false positives, so it scans a
  // superset of combinations: costs match.
  EXPECT_NEAR(mbrb.cost, ssc.cost, 1e-3 * ssc.cost + 1e-9);
}

TEST(MolqTest, DedupCombinationsDoesNotChangeAnswer) {
  const MolqQuery q = RandomQuery({5, 5, 4}, 119, true);
  MolqOptions a;
  a.algorithm = MolqAlgorithm::kMbrb;
  a.epsilon = 1e-6;
  const auto base = SolveMolq(q, kBounds, a);
  MolqOptions b = a;
  b.dedup_combinations = true;
  const auto dedup = SolveMolq(q, kBounds, b);
  EXPECT_NEAR(base.cost, dedup.cost, 1e-9);
  EXPECT_GE(base.stats.optimizer.problems, dedup.stats.optimizer.problems);
}

TEST(MolqTest, CostBoundAndPrefilterDoNotChangeAnswer) {
  const MolqQuery q = RandomQuery({5, 4, 4}, 120, true);
  MolqOptions slow;
  slow.algorithm = MolqAlgorithm::kRrb;
  slow.epsilon = 1e-6;
  slow.use_cost_bound = false;
  slow.use_two_point_prefilter = false;
  const auto base = SolveMolq(q, kBounds, slow);
  MolqOptions fast = slow;
  fast.use_cost_bound = true;
  fast.use_two_point_prefilter = true;
  const auto pruned = SolveMolq(q, kBounds, fast);
  EXPECT_NEAR(base.cost, pruned.cost, 2e-6 * base.cost + 1e-9);
}

TEST(MolqTest, Property5HoldsOnFinalMovd) {
  // Paper Property 5: for q in OVR(p_1..p_n), WGD(q, its group) equals
  // MWGD(q, Ē).
  const MolqQuery q = RandomQuery({4, 4}, 121, false);
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kRrb;
  // Rebuild the final MOVD through the public pieces.
  std::vector<Movd> basic;
  for (int32_t s = 0; s < 2; ++s) {
    basic.push_back(BuildBasicMovd(q, s, kBounds, 64));
  }
  const Movd final_movd = OverlapAll(basic, BoundaryMode::kRealRegion);
  Rng rng(122);
  for (const Ovr& ovr : final_movd.ovrs) {
    // Probe the OVR's centroid when it lies inside the region.
    if (ovr.region.pieces().empty()) continue;
    const Point probe = ovr.region.pieces()[0].Centroid();
    if (!ovr.region.Contains(probe)) continue;
    EXPECT_NEAR(WeightedGroupDistance(q, probe, ovr.pois),
                MinWeightedGroupDistance(q, probe), 1e-9);
  }
}

class MolqParallelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MolqParallelTest, ThreadCountDoesNotChangeTheAnswer) {
  // The whole point of the (cost, index) reduction + strict shared bound:
  // the answer triple is bit-identical for every thread count.
  const MolqQuery q =
      RandomQuery({5, 4, 4}, GetParam() + 3000, /*random_type_weights=*/true);
  for (const MolqAlgorithm algo :
       {MolqAlgorithm::kRrb, MolqAlgorithm::kMbrb}) {
    MolqOptions opts;
    opts.algorithm = algo;
    opts.epsilon = 1e-6;
    const auto serial = SolveMolq(q, kBounds, opts);
    EXPECT_EQ(serial.stats.threads, 1);
    for (const int threads : {2, 4, 8}) {
      MolqOptions par = opts;
      par.exec.threads = threads;
      const auto r = SolveMolq(q, kBounds, par);
      EXPECT_EQ(r.cost, serial.cost) << "threads=" << threads;
      EXPECT_EQ(r.location.x, serial.location.x) << "threads=" << threads;
      EXPECT_EQ(r.location.y, serial.location.y) << "threads=" << threads;
      EXPECT_EQ(r.group, serial.group) << "threads=" << threads;
      EXPECT_EQ(r.stats.threads, threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MolqParallelTest,
                         ::testing::Values(31, 32, 33, 34));

TEST(MolqParallelWeightedTest, GridDiagramsDeterministicAcrossThreads) {
  // Non-uniform object weights route through the row-parallel weighted
  // Voronoi grid; the owner grid is a pure function of its inputs, so the
  // final answer must not depend on the thread count either.
  MolqQuery q = RandomQuery({4, 4}, 3100, /*random_type_weights=*/false);
  Rng rng(3101);
  for (auto& set : q.sets) {
    for (auto& obj : set.objects) obj.object_weight = rng.Uniform(0.5, 2.0);
  }
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kMbrb;
  opts.epsilon = 1e-6;
  opts.exec.weighted_grid_resolution = 64;
  const auto serial = SolveMolq(q, kBounds, opts);
  MolqOptions par = opts;
  par.exec.threads = 4;
  const auto r = SolveMolq(q, kBounds, par);
  EXPECT_EQ(r.cost, serial.cost);
  EXPECT_EQ(r.location.x, serial.location.x);
  EXPECT_EQ(r.location.y, serial.location.y);
  EXPECT_EQ(r.group, serial.group);
}

TEST(MolqTest, TiedOptimaAgreeAcrossEnginesAndThreads) {
  // Two combinations tie at cost exactly 5: (A, C) and (B, D) both span a
  // (3, 4) displacement. With the unified strict (>) prefilter/bound tie
  // semantics, neither engine may discard the tied runner-up mid-search,
  // and SSC and RRB must land on the same cost.
  MolqQuery q;
  q.sets.resize(2);
  q.sets[0].name = "first";
  q.sets[1].name = "second";
  auto add = [](ObjectSet* set, Point at) {
    SpatialObject obj;
    obj.location = at;
    obj.type_weight = 1.0;
    obj.object_weight = 1.0;
    set->objects.push_back(obj);
  };
  add(&q.sets[0], {10, 10});  // A
  add(&q.sets[0], {60, 10});  // B
  add(&q.sets[1], {13, 14});  // C = A + (3, 4)
  add(&q.sets[1], {63, 14});  // D = B + (3, 4)

  const auto ssc = Solve(q, MolqAlgorithm::kSsc);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  EXPECT_EQ(ssc.cost, 5.0);
  EXPECT_EQ(rrb.cost, 5.0);
  EXPECT_EQ(ssc.cost, rrb.cost);
  // Each returned location must genuinely achieve the minimum MWGD.
  EXPECT_EQ(MinWeightedGroupDistance(q, ssc.location), 5.0);
  EXPECT_EQ(MinWeightedGroupDistance(q, rrb.location), 5.0);

  // And the tie resolution is thread-count-invariant.
  MolqOptions par;
  par.algorithm = MolqAlgorithm::kRrb;
  par.epsilon = 1e-6;
  par.exec.threads = 4;
  const auto rrb4 = SolveMolq(q, kBounds, par);
  EXPECT_EQ(rrb4.cost, rrb.cost);
  EXPECT_EQ(rrb4.location.x, rrb.location.x);
  EXPECT_EQ(rrb4.location.y, rrb.location.y);
  EXPECT_EQ(rrb4.group, rrb.group);
}

TEST(MolqTest, GroupIsPopulatedAndConsistent) {
  // MolqResult.group must name the combination that realises the cost, for
  // every engine.
  const MolqQuery q = RandomQuery({4, 3, 3}, 3200, true);
  for (const MolqAlgorithm algo :
       {MolqAlgorithm::kSsc, MolqAlgorithm::kRrb, MolqAlgorithm::kMbrb}) {
    const auto r = Solve(q, algo);
    ASSERT_EQ(r.group.size(), q.sets.size());
    EXPECT_NEAR(WeightedGroupDistance(q, r.location, r.group), r.cost,
                1e-6 * r.cost + 1e-9);
  }
}

TEST(MolqTest, StatsArePopulated) {
  const MolqQuery q = RandomQuery({6, 6, 5}, 123, true);
  const auto rrb = Solve(q, MolqAlgorithm::kRrb);
  EXPECT_GT(rrb.stats.final_ovrs, 0u);
  EXPECT_GT(rrb.stats.memory_bytes, 0u);
  EXPECT_GT(rrb.stats.optimizer.problems, 0u);
  EXPECT_EQ(rrb.stats.optimizer.problems, rrb.stats.final_ovrs);
  const auto ssc = Solve(q, MolqAlgorithm::kSsc);
  EXPECT_EQ(ssc.stats.ssc.combinations, 6u * 6u * 5u);
}

}  // namespace
}  // namespace movd
