// Tests for the benchmark harness subsystem (src/bench_lib, DESIGN.md §10):
// the JSON document model, BENCH_*.json emit/parse roundtrip, bench_diff
// verdict semantics (injected regression, same-machine rerun, metric
// drift), and an in-process harness smoke run via RunBenchesForTest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_lib/bench.h"
#include "bench_lib/diff.h"
#include "bench_lib/json.h"
#include "bench_lib/report.h"
#include "gtest/gtest.h"

namespace movd::bench {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, ParseScalars) {
  EXPECT_EQ(JsonValue::Parse("null").value().kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(JsonValue::Parse("true").value().AsBool());
  EXPECT_FALSE(JsonValue::Parse("false").value().AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-12.5e2").value().AsNumber(), -1250.0);
  EXPECT_EQ(JsonValue::Parse("\"a\\nb\"").value().AsString(), "a\nb");
}

TEST(JsonTest, ParseNested) {
  const auto doc =
      JsonValue::Parse("{\"a\": [1, 2, {\"b\": \"c\"}], \"d\": {}}");
  ASSERT_TRUE(doc.ok());
  const JsonValue* a = doc.value().Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].AsNumber(), 1.0);
  EXPECT_EQ(a->items()[2].StringOr("b", ""), "c");
}

TEST(JsonTest, ParseErrorsCarryOffsets) {
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2").ok());
  EXPECT_FALSE(JsonValue::Parse("12 garbage").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());
}

TEST(JsonTest, WriteParseRoundtrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("x"));
  obj.Set("value", JsonValue::Number(0.001234567891234));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(1));
  arr.Append(JsonValue::Bool(true));
  arr.Append(JsonValue());
  obj.Set("list", std::move(arr));

  for (const int indent : {-1, 2}) {
    const auto parsed = JsonValue::Parse(obj.Write(indent));
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().NumberOr("value", 0.0),
                     0.001234567891234);
    EXPECT_EQ(parsed.value().Find("list")->items().size(), 3u);
  }
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Number(1));
  obj.Set("a", JsonValue::Number(2));
  const std::string text = obj.Write();
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));
}

// -------------------------------------------------------------- report --

BenchReport MakeReport(double median, double stddev, double cost) {
  BenchReport report;
  report.suite = "unit";
  report.machine = BenchReport::ThisMachine();
  BenchCaseResult c;
  c.bench = "b";
  c.name = "case/n=1";
  c.params = {{"n", "1"}};
  c.wall.count = 5;
  c.wall.min = median - stddev;
  c.wall.max = median + stddev;
  c.wall.mean = median;
  c.wall.median = median;
  c.wall.p95 = median + stddev;
  c.wall.stddev = stddev;
  c.metrics = {{"cost", cost}};
  c.derived = {{"speedup", 1.0}};
  c.phases = {{"solve_molq", median}};
  report.cases.push_back(std::move(c));
  return report;
}

TEST(ReportTest, JsonRoundtripPreservesEverything) {
  const BenchReport report = MakeReport(0.125, 0.003, 42.5);
  const auto parsed = BenchReport::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok());
  const BenchReport& r = parsed.value();
  EXPECT_EQ(r.suite, "unit");
  EXPECT_TRUE(r.machine.SameAs(report.machine));
  ASSERT_EQ(r.cases.size(), 1u);
  const BenchCaseResult& c = r.cases[0];
  EXPECT_EQ(c.bench, "b");
  EXPECT_EQ(c.name, "case/n=1");
  ASSERT_EQ(c.params.size(), 1u);
  EXPECT_EQ(c.params[0].second, "1");
  EXPECT_DOUBLE_EQ(c.wall.median, 0.125);
  EXPECT_DOUBLE_EQ(c.wall.stddev, 0.003);
  EXPECT_EQ(c.wall.count, 5u);
  ASSERT_EQ(c.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(c.metrics[0].second, 42.5);
  ASSERT_EQ(c.derived.size(), 1u);
  ASSERT_EQ(c.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(c.phases[0].second, 0.125);
}

TEST(ReportTest, SaveLoadRoundtrip) {
  const std::string path = testing::TempDir() + "/bench_report_rt.json";
  const BenchReport report = MakeReport(0.5, 0.01, 7.0);
  ASSERT_TRUE(report.Save(path).ok());
  const auto loaded = BenchReport::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().cases.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.value().cases[0].wall.median, 0.5);
  std::remove(path.c_str());
}

TEST(ReportTest, LoadRejectsWrongSchema) {
  const std::string path = testing::TempDir() + "/bench_bad_schema.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\": \"movd-bench/999\", \"suite\": \"x\"}", f);
  std::fclose(f);
  EXPECT_FALSE(BenchReport::Load(path).ok());
  std::remove(path.c_str());
}

TEST(ReportTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(BenchReport::Load("/nonexistent/bench.json").ok());
}

// ---------------------------------------------------------------- diff --

CaseVerdict SoleVerdict(const DiffResult& result) {
  EXPECT_EQ(result.cases.size(), 1u);
  return result.cases.empty() ? CaseVerdict::kWithinNoise
                              : result.cases[0].verdict;
}

TEST(DiffTest, IdenticalRerunPasses) {
  // A same-machine rerun with identical numbers must exit clean — the
  // acceptance criterion for `bench_diff old.json new.json` on a rerun.
  const BenchReport report = MakeReport(0.1, 0.001, 5.0);
  const DiffResult result = DiffReports(report, report, DiffOptions());
  EXPECT_FALSE(result.failed());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kWithinNoise);
}

TEST(DiffTest, InjectedRegressionFails) {
  // +50% median on the same machine with tight stddev: a regression well
  // past the 20% threshold must fail the diff.
  const BenchReport old_report = MakeReport(0.1, 0.001, 5.0);
  const BenchReport new_report = MakeReport(0.15, 0.001, 5.0);
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kRegression);
}

TEST(DiffTest, ImprovementDetected) {
  const BenchReport old_report = MakeReport(0.2, 0.001, 5.0);
  const BenchReport new_report = MakeReport(0.1, 0.001, 5.0);
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_FALSE(result.failed());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kImprovement);
  EXPECT_EQ(result.improvements, 1);
}

TEST(DiffTest, SmallDeltaWithinNoise) {
  // +10% is under the 20% threshold: within noise.
  const BenchReport old_report = MakeReport(0.10, 0.002, 5.0);
  const BenchReport new_report = MakeReport(0.11, 0.002, 5.0);
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kWithinNoise);
}

TEST(DiffTest, NoisyRunCannotRegress) {
  // +50% median but the stddev is huge (cv > max_noise_cv): the
  // noisy-machine gate reports within-noise instead of a false alarm.
  const BenchReport old_report = MakeReport(0.10, 0.05, 5.0);
  const BenchReport new_report = MakeReport(0.15, 0.05, 5.0);
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_FALSE(result.failed());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kWithinNoise);
}

TEST(DiffTest, DeltaUnderNoiseFloorIsWithinNoise) {
  // 25% growth passes the threshold but not 3x the stddev: within noise.
  const BenchReport old_report = MakeReport(0.10, 0.02, 5.0);
  const BenchReport new_report = MakeReport(0.125, 0.02, 5.0);
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kWithinNoise);
}

TEST(DiffTest, CrossMachineRegressionIsAdvisory) {
  const BenchReport old_report = MakeReport(0.1, 0.001, 5.0);
  BenchReport new_report = MakeReport(0.2, 0.001, 5.0);
  new_report.machine.host = "elsewhere";
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_FALSE(result.failed());
  EXPECT_FALSE(result.same_machine);
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kTimingAdvisory);

  DiffOptions strict;
  strict.cross_machine_timing = true;
  EXPECT_TRUE(DiffReports(old_report, new_report, strict).failed());
}

TEST(DiffTest, MetricDriftFailsEvenCrossMachine) {
  const BenchReport old_report = MakeReport(0.1, 0.001, 5.0);
  BenchReport new_report = MakeReport(0.1, 0.001, 5.001);
  new_report.machine.host = "elsewhere";
  const DiffResult result =
      DiffReports(old_report, new_report, DiffOptions());
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(SoleVerdict(result), CaseVerdict::kMetricMismatch);
}

TEST(DiffTest, DerivedValuesNeverGate) {
  const BenchReport old_report = MakeReport(0.1, 0.001, 5.0);
  BenchReport new_report = MakeReport(0.1, 0.001, 5.0);
  new_report.cases[0].derived = {{"speedup", 99.0}};
  EXPECT_FALSE(
      DiffReports(old_report, new_report, DiffOptions()).failed());
}

TEST(DiffTest, MissingCaseFailsNewCaseDoesNot) {
  const BenchReport old_report = MakeReport(0.1, 0.001, 5.0);
  BenchReport renamed = MakeReport(0.1, 0.001, 5.0);
  renamed.cases[0].name = "case/n=2";
  const DiffResult result =
      DiffReports(old_report, renamed, DiffOptions());
  EXPECT_TRUE(result.failed());
  ASSERT_EQ(result.cases.size(), 2u);
  EXPECT_EQ(result.cases[0].verdict, CaseVerdict::kMissingCase);
  EXPECT_EQ(result.cases[1].verdict, CaseVerdict::kNewCase);

  // A brand-new case alone (superset run) must not fail.
  BenchReport superset = MakeReport(0.1, 0.001, 5.0);
  BenchCaseResult extra = superset.cases[0];
  extra.name = "case/n=4";
  superset.cases.push_back(extra);
  EXPECT_FALSE(DiffReports(old_report, superset, DiffOptions()).failed());
}

TEST(DiffTest, MetricsOnlySkipsTimingVerdicts) {
  const BenchReport old_report = MakeReport(0.1, 0.001, 5.0);
  const BenchReport new_report = MakeReport(0.5, 0.001, 5.0);
  DiffOptions options;
  options.metrics_only = true;
  EXPECT_FALSE(DiffReports(old_report, new_report, options).failed());
}

// ------------------------------------------------------------- harness --

// A real registered bench: deterministic workload, one metric, params.
BENCH(harness_selftest) {
  const int64_t n = ctx.flags().GetInt("selftest_n", 64);
  BenchCase& c = ctx.Case("sum/n=" + std::to_string(n)).Param("n", n);
  double sum = 0.0;
  ctx.Measure(c, [&] {
    sum = 0.0;
    for (int64_t i = 0; i < n * 1000; ++i) {
      sum += static_cast<double>(i % 7);
    }
    Keep(sum);
  });
  c.Metric("sum", sum);
  c.Derived("ns_per_elem",
            c.wall().median / static_cast<double>(n * 1000) * 1e9);
}

TEST(HarnessTest, RunBenchesForTestProducesReport) {
  const BenchReport report = RunBenchesForTest(
      "selftest", {"--filter=harness_selftest", "--repetitions=3",
                   "--selftest_n=16"});
  EXPECT_EQ(report.suite, "selftest");
  EXPECT_EQ(report.config.repetitions, 3);
  ASSERT_EQ(report.cases.size(), 1u);
  const BenchCaseResult& c = report.cases[0];
  EXPECT_EQ(c.bench, "harness_selftest");
  EXPECT_EQ(c.name, "sum/n=16");
  EXPECT_EQ(c.wall.count + c.wall.outliers, 3u);
  EXPECT_GT(c.wall.median, 0.0);
  ASSERT_EQ(c.metrics.size(), 1u);
  EXPECT_EQ(c.metrics[0].first, "sum");
  ASSERT_EQ(c.derived.size(), 1u);
}

TEST(HarnessTest, RerunIsMetricDeterministicAndDiffClean) {
  const std::vector<std::string> args = {"--filter=harness_selftest",
                                         "--repetitions=2"};
  const BenchReport a = RunBenchesForTest("selftest", args);
  const BenchReport b = RunBenchesForTest("selftest", args);
  ASSERT_EQ(a.cases.size(), 1u);
  ASSERT_EQ(b.cases.size(), 1u);
  EXPECT_EQ(a.cases[0].metrics[0].second, b.cases[0].metrics[0].second);
  // The end-to-end acceptance shape: a same-machine rerun diffs clean.
  // Timing gates use a loose threshold here — a ~100us in-process loop
  // can jitter past 20% under a loaded test runner, and the strict verdict
  // semantics are pinned by the synthetic-report tests above; this test
  // pins the metric/case-identity path on real harness output.
  DiffOptions tolerant;
  tolerant.time_threshold = 5.0;
  EXPECT_FALSE(DiffReports(a, b, tolerant).failed());
}

TEST(HarnessTest, PhasesCanBeDisabled) {
  const BenchReport report = RunBenchesForTest(
      "selftest",
      {"--filter=harness_selftest", "--repetitions=1", "--phases=0"});
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_TRUE(report.cases[0].phases.empty());
  EXPECT_FALSE(report.config.phases);
}

TEST(HarnessTest, ReportJsonRoundtripsThroughFile) {
  const BenchReport report = RunBenchesForTest(
      "selftest", {"--filter=harness_selftest", "--repetitions=1"});
  const std::string path = testing::TempDir() + "/bench_selftest.json";
  ASSERT_TRUE(report.Save(path).ok());
  const auto loaded = BenchReport::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(
      DiffReports(report, loaded.value(), DiffOptions()).failed());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace movd::bench
