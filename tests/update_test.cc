// Tests of the live-update machinery (DESIGN.md §14): the dynamic
// Delaunay triangulation (insert/remove vs batch construction), the
// ordinary-layer mirror whose Materialize() must stay byte-identical to a
// from-scratch BuildBasicMovd across arbitrary mutation scripts, the
// overlay patcher vs a full refold, and the patched-vs-rebuilt audit
// validator that gates all of it in the serve stack.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit_update.h"
#include "core/molq.h"
#include "core/overlap.h"
#include "core/update.h"
#include "model/movd_model.h"
#include "model/update_model.h"
#include "util/rng.h"
#include "voronoi/incremental.h"

namespace movd {
namespace {

constexpr Rect kWorld(0, 0, 100, 100);

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(5, 95), rng.Uniform(5, 95)});
  }
  return points;
}

/// A query whose layers all take the exact ordinary-Voronoi route
/// (uniform weights), which is what the incremental patcher mirrors.
MolqQuery OrdinaryQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("layer") += std::to_string(s);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

bool SamePointBits(const Point& a, const Point& b) {
  return std::memcmp(&a, &b, sizeof(Point)) == 0;
}

/// Applies `mut` to `query` the way the serve engine does: insert appends
/// a default-weight object, delete removes the first object whose
/// location is bit-identical.
void ApplyToQuery(MolqQuery* query, const SiteMutation& mut) {
  ObjectSet& set = query->sets.at(mut.layer);
  if (mut.kind == MutationKind::kInsert) {
    SpatialObject obj;
    obj.location = mut.location;
    set.objects.push_back(obj);
    return;
  }
  for (size_t i = 0; i < set.objects.size(); ++i) {
    if (SamePointBits(set.objects[i].location, mut.location)) {
      set.objects.erase(set.objects.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  FAIL() << "ApplyToQuery: deleting an absent object";
}

/// The serve stack's overlay fold: identity start, ascending layers,
/// canonical OVR order (so patched and rebuilt overlays are
/// byte-comparable).
Movd FoldOverlay(const std::vector<const Movd*>& basics, BoundaryMode mode) {
  Movd acc = IdentityMovd(kWorld);
  for (const Movd* basic : basics) {
    acc = Overlap(acc, *basic, mode);
  }
  CanonicalizeOvrOrder(&acc);
  return acc;
}

// ---------------------------------------------------------------------------
// IncrementalDelaunay

TEST(IncrementalDelaunayTest, SequentialInsertionMatchesBatchConstruction) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<Point> points = RandomPoints(40, seed);
    const IncrementalDelaunay batch(points, kWorld);
    ASSERT_TRUE(batch.Verify()) << "seed " << seed;

    IncrementalDelaunay grown(
        std::vector<Point>(points.begin(), points.begin() + 5), kWorld);
    for (size_t i = 5; i < points.size(); ++i) {
      std::vector<Point> affected;
      ASSERT_TRUE(grown.Insert(points[i], &affected)) << "seed " << seed;
      // The inserted point is always among the affected sites.
      EXPECT_NE(std::find_if(affected.begin(), affected.end(),
                             [&](const Point& p) {
                               return SamePointBits(p, points[i]);
                             }),
                affected.end());
    }
    ASSERT_TRUE(grown.Verify()) << "seed " << seed;
    ASSERT_EQ(grown.size(), batch.size());
    // Random points are in general position, so the Delaunay triangulation
    // is unique: every site must have the same neighbour set either way.
    const std::vector<Point> sites = batch.Sites();
    ASSERT_EQ(grown.Sites(), sites);
    for (const Point& site : sites) {
      EXPECT_EQ(grown.NeighborsOf(site), batch.NeighborsOf(site))
          << "seed " << seed;
    }
  }
}

TEST(IncrementalDelaunayTest, RemovalMatchesFreshConstruction) {
  for (uint64_t seed = 11; seed <= 18; ++seed) {
    std::vector<Point> points = RandomPoints(36, seed);
    IncrementalDelaunay dt(points, kWorld);
    Rng rng(seed * 31 + 7);
    // Remove a third of the sites one by one.
    for (int step = 0; step < 12; ++step) {
      const size_t victim = rng.NextBelow(points.size());
      std::vector<Point> affected;
      ASSERT_TRUE(dt.Remove(points[victim], &affected)) << "seed " << seed;
      EXPECT_FALSE(dt.Contains(points[victim]));
      points.erase(points.begin() + static_cast<ptrdiff_t>(victim));
    }
    ASSERT_TRUE(dt.Verify()) << "seed " << seed;
    const IncrementalDelaunay fresh(points, kWorld);
    ASSERT_EQ(dt.Sites(), fresh.Sites());
    for (const Point& site : fresh.Sites()) {
      EXPECT_EQ(dt.NeighborsOf(site), fresh.NeighborsOf(site))
          << "seed " << seed;
    }
  }
}

TEST(IncrementalDelaunayTest, RejectsDuplicateInsertAndAbsentRemove) {
  const std::vector<Point> points = RandomPoints(10, 3);
  IncrementalDelaunay dt(points, kWorld);
  EXPECT_FALSE(dt.Insert(points[4], nullptr));  // already a vertex
  EXPECT_EQ(dt.size(), points.size());
  EXPECT_FALSE(dt.Remove({50.0, 50.0}, nullptr));  // never inserted
  EXPECT_EQ(dt.size(), points.size());
  EXPECT_TRUE(dt.Verify());
}

// ---------------------------------------------------------------------------
// OrdinaryLayerState: patched basics must be byte-identical to rebuilds

TEST(OrdinaryLayerStateTest, MaterializeMatchesFullBuildAcrossMutations) {
  // 24 seeds x 12-step random insert/delete scripts: after every step the
  // mirror's Materialize() must reproduce BuildBasicMovd byte for byte —
  // the live-update contract the serve stack's audit gate enforces.
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    MolqQuery query = OrdinaryQuery({10 + seed % 7}, seed);
    ASSERT_TRUE(OrdinaryDiagramSuffices(query, 0));
    OrdinaryLayerState state(query, 0, kWorld);
    Rng rng(seed * 97 + 13);
    for (int step = 0; step < 12; ++step) {
      SiteMutation mut;
      mut.layer = 0;
      const size_t n = query.sets[0].objects.size();
      if (n > 4 && rng.NextBelow(3) == 0) {
        mut.kind = MutationKind::kDelete;
        mut.location = query.sets[0].objects[rng.NextBelow(n)].location;
      } else {
        mut.kind = MutationKind::kInsert;
        mut.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      }
      LayerPatchStats stats;
      ASSERT_TRUE(state.Apply(mut, &stats)) << "seed " << seed;
      ApplyToQuery(&query, mut);
      ASSERT_EQ(state.num_objects(), query.sets[0].objects.size());
      // The patch touches only the mutation's Delaunay neighbourhood,
      // never the whole layer.
      EXPECT_LE(stats.recomputed_cells, stats.total_cells);

      const Movd patched = state.Materialize();
      const Movd rebuilt = BuildBasicMovd(query, 0, kWorld, 128);
      EXPECT_TRUE(MovdBitIdentical(patched, rebuilt))
          << "seed " << seed << " step " << step << ": "
          << AuditPatchedMovd(patched, rebuilt).Summary();
    }
  }
}

TEST(OrdinaryLayerStateTest, HandlesDuplicateLocations) {
  MolqQuery query = OrdinaryQuery({12}, 42);
  OrdinaryLayerState state(query, 0, kWorld);
  const Point dup = query.sets[0].objects[3].location;

  // Inserting an object at an existing site changes no cells.
  SiteMutation insert{MutationKind::kInsert, 0, dup};
  LayerPatchStats stats;
  ASSERT_TRUE(state.Apply(insert, &stats));
  EXPECT_EQ(stats.recomputed_cells, 0u);
  ApplyToQuery(&query, insert);
  EXPECT_TRUE(
      MovdBitIdentical(state.Materialize(), BuildBasicMovd(query, 0, kWorld,
                                                           128)));

  // Deleting one of the two co-located objects keeps the site alive (the
  // surviving object takes it over).
  SiteMutation del{MutationKind::kDelete, 0, dup};
  ASSERT_TRUE(state.Apply(del, &stats));
  EXPECT_EQ(stats.recomputed_cells, 0u);
  ApplyToQuery(&query, del);
  EXPECT_TRUE(
      MovdBitIdentical(state.Materialize(), BuildBasicMovd(query, 0, kWorld,
                                                           128)));

  // Deleting the last object at the location removes the site.
  ASSERT_TRUE(state.Apply(del, &stats));
  EXPECT_GT(stats.recomputed_cells, 0u);
  ApplyToQuery(&query, del);
  EXPECT_TRUE(
      MovdBitIdentical(state.Materialize(), BuildBasicMovd(query, 0, kWorld,
                                                           128)));
}

// ---------------------------------------------------------------------------
// PatchOverlay: patched overlays must be byte-identical to full refolds

class PatchOverlayTest : public ::testing::TestWithParam<BoundaryMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, PatchOverlayTest,
                         ::testing::Values(BoundaryMode::kRealRegion,
                                           BoundaryMode::kMbr));

TEST_P(PatchOverlayTest, InsertPatchMatchesFullRefold) {
  const BoundaryMode mode = GetParam();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    MolqQuery query = OrdinaryQuery({9, 8, 7}, seed * 5 + 2);
    std::vector<Movd> basics;
    for (int32_t s = 0; s < 3; ++s) {
      basics.push_back(BuildBasicMovd(query, s, kWorld, 128));
    }
    const Movd old_overlay =
        FoldOverlay({&basics[0], &basics[1], &basics[2]}, mode);

    Rng rng(seed);
    SiteMutation mut{MutationKind::kInsert,
                     1,
                     {rng.Uniform(10, 90), rng.Uniform(10, 90)}};
    ApplyToQuery(&query, mut);
    const Movd new_basic = BuildBasicMovd(query, 1, kWorld, 128);

    Movd patched;
    OverlayPatchStats stats;
    const auto basic_of = [&](int32_t layer) { return &basics[layer]; };
    ASSERT_TRUE(PatchOverlay(old_overlay, {0, 1, 2}, 1, basics[1], new_basic,
                             basic_of, mode, kWorld, -1, &patched, &stats));
    const Movd rebuilt =
        FoldOverlay({&basics[0], &new_basic, &basics[2]}, mode);
    EXPECT_TRUE(MovdBitIdentical(patched, rebuilt))
        << "seed " << seed << ": "
        << AuditPatchedMovd(patched, rebuilt).Summary();
    // The patch must actually be incremental: combos away from the insert
    // are retained, not re-derived.
    EXPECT_GT(stats.retained_ovrs, 0u) << "seed " << seed;
  }
}

TEST_P(PatchOverlayTest, DeletePatchMatchesFullRefold) {
  const BoundaryMode mode = GetParam();
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    MolqQuery query = OrdinaryQuery({9, 8, 7}, seed);
    std::vector<Movd> basics;
    for (int32_t s = 0; s < 3; ++s) {
      basics.push_back(BuildBasicMovd(query, s, kWorld, 128));
    }
    const Movd old_overlay =
        FoldOverlay({&basics[0], &basics[1], &basics[2]}, mode);

    const int32_t victim = static_cast<int32_t>(seed % 8);
    SiteMutation mut{MutationKind::kDelete, 1,
                     query.sets[1].objects[static_cast<size_t>(victim)]
                         .location};
    ApplyToQuery(&query, mut);
    const Movd new_basic = BuildBasicMovd(query, 1, kWorld, 128);

    Movd patched;
    OverlayPatchStats stats;
    const auto basic_of = [&](int32_t layer) { return &basics[layer]; };
    ASSERT_TRUE(PatchOverlay(old_overlay, {0, 1, 2}, 1, basics[1], new_basic,
                             basic_of, mode, kWorld, victim, &patched,
                             &stats));
    const Movd rebuilt =
        FoldOverlay({&basics[0], &new_basic, &basics[2]}, mode);
    EXPECT_TRUE(MovdBitIdentical(patched, rebuilt))
        << "seed " << seed << ": "
        << AuditPatchedMovd(patched, rebuilt).Summary();
  }
}

TEST(PatchOverlayNoParamTest, MissingPeerBasicRefusesToPatch) {
  MolqQuery query = OrdinaryQuery({8, 8}, 77);
  std::vector<Movd> basics;
  for (int32_t s = 0; s < 2; ++s) {
    basics.push_back(BuildBasicMovd(query, s, kWorld, 128));
  }
  const Movd old_overlay =
      FoldOverlay({&basics[0], &basics[1]}, BoundaryMode::kRealRegion);
  SiteMutation mut{MutationKind::kInsert, 1, {33.0, 44.0}};
  ApplyToQuery(&query, mut);
  const Movd new_basic = BuildBasicMovd(query, 1, kWorld, 128);
  Movd patched;
  OverlayPatchStats stats;
  // Layer 0's basic is unavailable: the patcher must refuse (the engine
  // then drops the cached overlay) rather than guess.
  const auto no_basic = [](int32_t) -> const Movd* { return nullptr; };
  EXPECT_FALSE(PatchOverlay(old_overlay, {0, 1}, 1, basics[1], new_basic,
                            no_basic, BoundaryMode::kRealRegion, kWorld, -1,
                            &patched, &stats));
}

// ---------------------------------------------------------------------------
// AuditPatchedMovd

TEST(AuditUpdateTest, CleanOnIdenticalArtifacts) {
  const MolqQuery query = OrdinaryQuery({10, 9}, 5);
  std::vector<Movd> basics;
  for (int32_t s = 0; s < 2; ++s) {
    basics.push_back(BuildBasicMovd(query, s, kWorld, 128));
  }
  const Movd overlay =
      FoldOverlay({&basics[0], &basics[1]}, BoundaryMode::kRealRegion);
  const AuditReport report = AuditPatchedMovd(overlay, overlay);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.checks(), 0u);
}

TEST(AuditUpdateTest, FlagsCountAndByteMismatches) {
  const MolqQuery query = OrdinaryQuery({10, 9}, 6);
  std::vector<Movd> basics;
  for (int32_t s = 0; s < 2; ++s) {
    basics.push_back(BuildBasicMovd(query, s, kWorld, 128));
  }
  const Movd rebuilt =
      FoldOverlay({&basics[0], &basics[1]}, BoundaryMode::kRealRegion);

  Movd truncated = rebuilt;
  truncated.ovrs.pop_back();
  const AuditReport count = AuditPatchedMovd(truncated, rebuilt);
  EXPECT_GT(count.CountKind(AuditKind::kPatchedOvrCount), 0u);

  Movd skewed = rebuilt;
  skewed.ovrs[0].mbr.min_x += 1e-9;  // one bit of drift must be caught
  const AuditReport bytes = AuditPatchedMovd(skewed, rebuilt);
  EXPECT_GT(bytes.CountKind(AuditKind::kPatchedOvrMismatch), 0u);

  Movd renumbered = rebuilt;
  renumbered.ovrs[0].pois[0].object += 1;
  const AuditReport pois = AuditPatchedMovd(renumbered, rebuilt);
  EXPECT_GT(pois.CountKind(AuditKind::kPatchedOvrMismatch), 0u);
}

TEST(AuditUpdateTest, NegativeZeroIsNotPositiveZero) {
  // "Bit-identical" means raw double bits: -0.0 and +0.0 are different
  // artifacts even though they compare equal as values.
  Ovr a;
  a.mbr = Rect(0.0, 0.0, 1.0, 1.0);
  a.pois = {{0, 0}};
  Ovr b = a;
  b.mbr.min_x = -0.0;
  EXPECT_TRUE(OvrBitIdentical(a, a));
  EXPECT_FALSE(OvrBitIdentical(a, b));
  EXPECT_TRUE(OvrGeometryBitIdentical(a, a));
  EXPECT_FALSE(OvrGeometryBitIdentical(a, b));
}

}  // namespace
}  // namespace movd
