// Tests of live site updates in the serve stack (DESIGN.md §14): the
// INSERT/DELETE protocol rows and the registry they derive from, the
// engine's mutation path (snapshot versioning, incremental artifact
// patching, structured errors), snapshot pinning under concurrent
// mutation (answers bit-identical per version), and admission-control
// shedding. Suite names carry the Serve prefix so the TSan CI job's
// --gtest_filter picks the concurrent ones up.

#include <atomic>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/molq.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

/// Layers that take the ordinary-Voronoi route (uniform weights), so
/// mutations exercise the incremental patcher rather than full rebuilds.
MolqQuery OrdinaryQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("layer") += std::to_string(s);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

/// The serve engine's "first object at exactly this location" mutation
/// semantics, applied to a reference query copy.
void ApplyToQuery(MolqQuery* query, const SiteMutation& mut) {
  ObjectSet& set = query->sets.at(mut.layer);
  if (mut.kind == MutationKind::kInsert) {
    SpatialObject obj;
    obj.location = mut.location;
    set.objects.push_back(obj);
    return;
  }
  for (size_t i = 0; i < set.objects.size(); ++i) {
    if (std::memcmp(&set.objects[i].location, &mut.location,
                    sizeof(Point)) == 0) {
      set.objects.erase(set.objects.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  FAIL() << "ApplyToQuery: deleting an absent object";
}

ServeRequest MutationRequest(const std::string& dataset, MutationKind kind,
                             int32_t layer, Point location) {
  ServeRequest req;
  req.dataset = dataset;
  req.mutate = true;
  req.mutation.kind = kind;
  req.mutation.layer = layer;
  req.mutation.location = location;
  req.cost_units = 4;
  return req;
}

/// The deterministic answer bytes of a response — ResponseJson without the
/// timing tail, resolved through the response's own pinned snapshot.
std::string AnswerBytes(const ServeResponse& resp) {
  return ResponseJson(resp.snapshot->query, resp, /*include_timing=*/false);
}

// ---------------------------------------------------------------------------
// Protocol: mutation verbs and the registry they come from

TEST(ServeUpdateProtocolTest, ParsesInsertAndDeleteLines) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(ParseRequestLine("INSERT id=m1 dataset=d layer=1 x=10.5 y=2.25",
                               &verb, &request)
                  .ok());
  EXPECT_EQ(verb, ServeVerb::kSolve);
  EXPECT_TRUE(request.mutate);
  EXPECT_EQ(request.mutation.kind, MutationKind::kInsert);
  EXPECT_EQ(request.mutation.layer, 1);
  EXPECT_EQ(request.mutation.location.x, 10.5);
  EXPECT_EQ(request.mutation.location.y, 2.25);
  EXPECT_EQ(request.cost_units, FindVerb("INSERT")->cost_units);

  ASSERT_TRUE(ParseRequestLine("delete dataset=d layer=0 x=3 y=4", &verb,
                               &request)
                  .ok());
  EXPECT_TRUE(request.mutate);
  EXPECT_EQ(request.mutation.kind, MutationKind::kDelete);
}

TEST(ServeUpdateProtocolTest, RejectsMalformedMutationLines) {
  ServeVerb verb;
  ServeRequest request;
  // layer/x/y are all required.
  EXPECT_FALSE(
      ParseRequestLine("INSERT dataset=d layer=0 x=1", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("INSERT dataset=d x=1 y=2", &verb, &request).ok());
  // Query vocabulary does not apply to mutations.
  EXPECT_FALSE(ParseRequestLine("INSERT dataset=d layer=0 x=1 y=2 layers=0",
                                &verb, &request)
                   .ok());
  EXPECT_FALSE(ParseRequestLine("DELETE dataset=d layer=0 x=1 y=2 k=2", &verb,
                                &request)
                   .ok());
  // Layer indices are non-negative; coordinates must be finite.
  EXPECT_FALSE(ParseRequestLine("DELETE dataset=d layer=-1 x=1 y=2", &verb,
                                &request)
                   .ok());
  EXPECT_FALSE(ParseRequestLine("INSERT dataset=d layer=0 x=nan y=2", &verb,
                                &request)
                   .ok());
  // Mutation vocabulary does not leak into queries either.
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d layer=0", &verb, &request).ok());
}

TEST(ServeUpdateProtocolTest, UnknownVerbIsUnsupportedNotInvalid) {
  ServeVerb verb;
  ServeRequest request;
  const Status status = ParseRequestLine("FROBNICATE dataset=d", &verb,
                                         &request);
  EXPECT_EQ(status.code(), StatusCode::kUnsupportedVerb);
  // The error names the protocol version and points at HELP.
  EXPECT_NE(status.message().find("HELP"), std::string::npos);
}

TEST(ServeUpdateProtocolTest, RegistryDrivesParsingAndHelp) {
  // Every registry row parses under its own name; HELP lists them all.
  const std::string help = HelpJson();
  EXPECT_NE(help.find("\"protocol_version\""), std::string::npos);
  size_t mutations = 0, controls = 0;
  for (const VerbDescriptor& d : VerbRegistry()) {
    EXPECT_EQ(FindVerb(d.name), &d);
    EXPECT_NE(help.find(d.name), std::string::npos) << d.name;
    EXPECT_LE(d.since_version, kServeProtocolVersion);
    if ((d.caps & kCapMutation) != 0) ++mutations;
    if ((d.caps & kCapControl) != 0) ++controls;
  }
  EXPECT_EQ(mutations, 2u);  // INSERT + DELETE
  EXPECT_GE(controls, 4u);   // STATS/HELP/PING/QUIT/SHUTDOWN
  // Mutations are costlier than queries under admission control.
  EXPECT_GT(FindVerb("INSERT")->cost_units, FindVerb("SOLVE")->cost_units);
  // Control verbs take no arguments.
  ServeVerb verb;
  ServeRequest request;
  EXPECT_FALSE(ParseRequestLine("PING x=1", &verb, &request).ok());
  ASSERT_TRUE(ParseRequestLine("HELP", &verb, &request).ok());
  EXPECT_EQ(verb, ServeVerb::kHelp);
}

// ---------------------------------------------------------------------------
// Engine: mutations publish versions and keep answers bit-identical

TEST(ServeUpdateEngineTest, InsertPublishesVersionAndMatchesColdPipeline) {
  MolqQuery query = OrdinaryQuery({12, 10}, 21);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);

  ServeRequest solve;
  solve.dataset = "d";
  const ServeResponse before = engine.Solve(solve);
  ASSERT_EQ(before.status, ServeStatus::kOk) << before.error;
  EXPECT_EQ(before.version, 1u);

  const SiteMutation mut{MutationKind::kInsert, 1, {37.5, 61.25}};
  const ServeResponse applied = engine.Solve(
      MutationRequest("d", mut.kind, mut.layer, mut.location));
  ASSERT_EQ(applied.status, ServeStatus::kOk) << applied.error;
  EXPECT_TRUE(applied.is_mutation);
  EXPECT_EQ(applied.version, 2u);
  EXPECT_FALSE(applied.mutation.full_rebuild);
  EXPECT_GT(applied.mutation.recomputed_cells, 0u);
  ApplyToQuery(&query, mut);

  const ServeResponse after = engine.Solve(solve);
  ASSERT_EQ(after.status, ServeStatus::kOk) << after.error;
  EXPECT_EQ(after.version, 2u);

  // The patched-artifact answer must be byte-identical to a cold engine
  // built directly on the mutated dataset.
  QueryEngine cold;
  cold.RegisterDataset("d", query, kBounds);
  const ServeResponse rebuilt = cold.Solve(solve);
  ASSERT_EQ(rebuilt.status, ServeStatus::kOk) << rebuilt.error;
  EXPECT_EQ(AnswerBytes(after), AnswerBytes(rebuilt));
  EXPECT_EQ(engine.metrics().mutations(), 1u);
}

TEST(ServeUpdateEngineTest, DeleteMatchesColdPipelineAndPatchesOverlays) {
  MolqQuery query = OrdinaryQuery({12, 10}, 22);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);

  // Warm the all-layer overlay so the mutation has artifacts to patch.
  ServeRequest solve;
  solve.dataset = "d";
  ASSERT_EQ(engine.Solve(solve).status, ServeStatus::kOk);
  ASSERT_TRUE(engine.Solve(solve).cache_hit);

  const SiteMutation mut{MutationKind::kDelete, 0,
                         query.sets[0].objects[5].location};
  const ServeResponse applied = engine.Solve(
      MutationRequest("d", mut.kind, mut.layer, mut.location));
  ASSERT_EQ(applied.status, ServeStatus::kOk) << applied.error;
  EXPECT_GT(applied.mutation.patched_artifacts, 0u);
  ApplyToQuery(&query, mut);

  // The patched overlay serves the new version straight from cache...
  const ServeResponse after = engine.Solve(solve);
  ASSERT_EQ(after.status, ServeStatus::kOk) << after.error;
  EXPECT_EQ(after.version, 2u);
  EXPECT_TRUE(after.cache_hit);

  // ...with bytes identical to a cold rebuild of the mutated dataset.
  QueryEngine cold;
  cold.RegisterDataset("d", query, kBounds);
  const ServeResponse rebuilt = cold.Solve(solve);
  ASSERT_EQ(rebuilt.status, ServeStatus::kOk) << rebuilt.error;
  EXPECT_EQ(AnswerBytes(after), AnswerBytes(rebuilt));
}

TEST(ServeUpdateEngineTest, MutationScriptUnderAuditMatchesColdPipeline) {
  // With auditing on, every patched artifact is certified against a
  // from-scratch rebuild inside the engine; a long mixed script must end
  // bit-identical to the cold pipeline.
  MolqQuery query = OrdinaryQuery({10, 9}, 23);
  QueryEngineOptions options;
  options.exec.audit = true;
  QueryEngine engine(options);
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest solve;
  solve.dataset = "d";
  ASSERT_EQ(engine.Solve(solve).status, ServeStatus::kOk);

  Rng rng(404);
  for (int step = 0; step < 10; ++step) {
    SiteMutation mut;
    mut.layer = step % 2;
    ObjectSet& set = query.sets[static_cast<size_t>(mut.layer)];
    if (set.objects.size() > 5 && rng.NextBelow(3) == 0) {
      mut.kind = MutationKind::kDelete;
      mut.location = set.objects[rng.NextBelow(set.objects.size())].location;
    } else {
      mut.kind = MutationKind::kInsert;
      mut.location = {rng.Uniform(6, 94), rng.Uniform(6, 94)};
    }
    const ServeResponse applied = engine.Solve(
        MutationRequest("d", mut.kind, mut.layer, mut.location));
    ASSERT_EQ(applied.status, ServeStatus::kOk)
        << "step " << step << ": " << applied.error;
    ApplyToQuery(&query, mut);
    ASSERT_EQ(applied.version, static_cast<uint64_t>(step) + 2);
  }

  const ServeResponse after = engine.Solve(solve);
  ASSERT_EQ(after.status, ServeStatus::kOk) << after.error;
  QueryEngine cold;
  cold.RegisterDataset("d", query, kBounds);
  const ServeResponse rebuilt = cold.Solve(solve);
  ASSERT_EQ(rebuilt.status, ServeStatus::kOk) << rebuilt.error;
  EXPECT_EQ(AnswerBytes(after), AnswerBytes(rebuilt));
}

TEST(ServeUpdateEngineTest, MutationErrorsAreStructured) {
  MolqQuery query = OrdinaryQuery({6, 1}, 24);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);

  // Unknown dataset.
  EXPECT_EQ(engine
                .Solve(MutationRequest("nope", MutationKind::kInsert, 0,
                                       {10, 10}))
                .status,
            ServeStatus::kNotFound);
  // Layer out of range.
  EXPECT_EQ(engine
                .Solve(MutationRequest("d", MutationKind::kInsert, 7,
                                       {10, 10}))
                .status,
            ServeStatus::kInvalidRequest);
  // Insert outside the world rectangle.
  EXPECT_EQ(engine
                .Solve(MutationRequest("d", MutationKind::kInsert, 0,
                                       {500, 10}))
                .status,
            ServeStatus::kInvalidRequest);
  // Deleting an absent object.
  EXPECT_EQ(engine
                .Solve(MutationRequest("d", MutationKind::kDelete, 0,
                                       {1.5, 1.5}))
                .status,
            ServeStatus::kNotFound);
  // Deleting a layer's last object would leave the dataset unservable.
  EXPECT_EQ(engine
                .Solve(MutationRequest("d", MutationKind::kDelete, 1,
                                       query.sets[1].objects[0].location))
                .status,
            ServeStatus::kInvalidRequest);
  // None of the failures published a version.
  EXPECT_EQ(engine.dataset_snapshot("d")->version, 1u);
  EXPECT_EQ(engine.metrics().mutations(), 0u);
}

TEST(ServeUpdateEngineTest, SnapshotsPinAndReRegistrationAdvancesVersions) {
  MolqQuery query = OrdinaryQuery({8, 8}, 25);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  const std::shared_ptr<const DatasetSnapshot> pinned =
      engine.dataset_snapshot("d");
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->version, 1u);
  const size_t objects_before = pinned->query.sets[0].objects.size();

  ASSERT_EQ(engine
                .Solve(MutationRequest("d", MutationKind::kInsert, 0,
                                       {50.5, 50.5}))
                .status,
            ServeStatus::kOk);
  // The pinned snapshot is immutable: the mutation published a new one.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->query.sets[0].objects.size(), objects_before);
  EXPECT_EQ(engine.dataset_snapshot("d")->version, 2u);

  // Re-registration never reuses a version, so stale cached artifacts
  // cannot collide with the fresh dataset's keys.
  engine.RegisterDataset("d", query, kBounds);
  EXPECT_EQ(engine.dataset_snapshot("d")->version, 3u);
}

// ---------------------------------------------------------------------------
// Concurrency: mutate-while-query stress (runs under the TSan CI filter)

TEST(ServeUpdateStressTest, QueriesStayBitIdenticalPerVersionUnderMutation) {
  MolqQuery query = OrdinaryQuery({14, 12}, 26);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> failures{0};
  std::mutex mu;
  std::map<std::string, std::string> first;  // (version, layers) -> bytes
  const std::vector<std::vector<int32_t>> patterns = {{}, {0}, {1}, {0, 1}};

  std::vector<std::thread> queriers;
  for (size_t t = 0; t < patterns.size(); ++t) {
    queriers.emplace_back([&, t]() {
      ServeRequest req;
      req.dataset = "d";
      req.layers = patterns[t];
      while (!done.load(std::memory_order_relaxed)) {
        const ServeResponse resp = engine.Solve(req);
        if (resp.status != ServeStatus::kOk) {
          failures.fetch_add(1);
          continue;
        }
        // Snapshot pinning: answers for one (version, layer set) must be
        // byte-identical no matter how mutations interleave.
        const std::string key =
            std::to_string(resp.version) + "/" + std::to_string(t);
        const std::string bytes = AnswerBytes(resp);
        std::lock_guard<std::mutex> lock(mu);
        const auto it = first.find(key);
        if (it == first.end()) {
          first.emplace(key, bytes);
        } else if (it->second != bytes) {
          mismatches.fetch_add(1);
        }
      }
    });
  }

  // Mutate on this thread while the queriers hammer the engine.
  Rng rng(27);
  const int kMutations = 24;
  for (int i = 0; i < kMutations; ++i) {
    SiteMutation mut;
    mut.layer = i % 2;
    ObjectSet& set = query.sets[static_cast<size_t>(mut.layer)];
    if (set.objects.size() > 6 && rng.NextBelow(3) == 0) {
      mut.kind = MutationKind::kDelete;
      mut.location = set.objects[rng.NextBelow(set.objects.size())].location;
    } else {
      mut.kind = MutationKind::kInsert;
      mut.location = {rng.Uniform(6, 94), rng.Uniform(6, 94)};
    }
    const ServeResponse applied = engine.Solve(
        MutationRequest("d", mut.kind, mut.layer, mut.location));
    ASSERT_EQ(applied.status, ServeStatus::kOk)
        << "mutation " << i << ": " << applied.error;
    ApplyToQuery(&query, mut);
  }
  done.store(true);
  for (std::thread& t : queriers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(engine.metrics().mutations(),
            static_cast<uint64_t>(kMutations));

  // The final version's answers match a cold engine over the reference
  // query that tracked every mutation.
  QueryEngine cold;
  cold.RegisterDataset("d", query, kBounds);
  for (size_t t = 0; t < patterns.size(); ++t) {
    ServeRequest req;
    req.dataset = "d";
    req.layers = patterns[t];
    const ServeResponse live = engine.Solve(req);
    const ServeResponse rebuilt = cold.Solve(req);
    ASSERT_EQ(live.status, ServeStatus::kOk) << live.error;
    ASSERT_EQ(rebuilt.status, ServeStatus::kOk) << rebuilt.error;
    EXPECT_EQ(live.version, static_cast<uint64_t>(kMutations) + 1);
    EXPECT_EQ(AnswerBytes(live), AnswerBytes(rebuilt));
  }
}

// ---------------------------------------------------------------------------
// Admission control

TEST(ServeUpdateAdmissionTest, QueueCostLimitShedsWithStructuredOverload) {
  QueryEngineOptions options;
  options.workers = 1;
  options.admission_cost_limit = 2;
  QueryEngine engine(options);
  engine.RegisterDataset("d", OrdinaryQuery({40, 36}, 28), kBounds);

  // A burst far beyond the queue budget: the worker can hold at most a
  // couple of cost units, so most of the burst must shed immediately.
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    ServeRequest req;
    req.dataset = "d";
    req.use_cache = false;  // keep each solve genuinely expensive
    futures.push_back(engine.SubmitAsync(std::move(req)));
  }
  uint64_t ok = 0, shed = 0;
  for (std::future<ServeResponse>& f : futures) {
    const ServeResponse resp = f.get();
    if (resp.status == ServeStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, ServeStatus::kOverloaded) << resp.error;
      EXPECT_FALSE(resp.error.empty());
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);    // admitted work still completes
  EXPECT_GT(shed, 0u);  // overload is rejected early, not queued forever
  EXPECT_EQ(engine.metrics().shed(), shed);
}

TEST(ServeUpdateAdmissionTest, DelayBudgetShedsStaleQueueEntries) {
  QueryEngineOptions options;
  options.workers = 1;
  // Generous enough that the front of the burst is admitted (dispatch
  // latency is microseconds) but far below the time the single worker
  // needs to drain the tail, which must therefore shed at dequeue.
  options.admission_delay_budget_ms = 20.0;
  QueryEngine engine(options);
  engine.RegisterDataset("d", OrdinaryQuery({60, 50}, 29), kBounds);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 24; ++i) {
    ServeRequest req;
    req.dataset = "d";
    req.use_cache = false;
    futures.push_back(engine.SubmitAsync(std::move(req)));
  }
  uint64_t ok = 0, shed = 0;
  for (std::future<ServeResponse>& f : futures) {
    const ServeResponse resp = f.get();
    if (resp.status == ServeStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, ServeStatus::kOverloaded) << resp.error;
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(engine.metrics().shed(), shed);
}

}  // namespace
}  // namespace movd
