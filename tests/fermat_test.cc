#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "fermat/batch.h"
#include "fermat/fermat_weber.h"
#include "geom/predicates.h"
#include "geom/rect.h"
#include "util/rng.h"

namespace movd {
namespace {

std::vector<WeightedPoint> RandomProblem(size_t n, Rng* rng) {
  std::vector<WeightedPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({{rng->Uniform(0, 10), rng->Uniform(0, 10)},
                   rng->Uniform(0.1, 10.0)});
  }
  return pts;
}

// Reference: coarse-to-fine grid minimisation of the cost function.
Point GridMinimize(const std::vector<WeightedPoint>& pts) {
  Rect box;
  for (const auto& p : pts) box.Expand(p.location);
  box = Rect(box.min_x - 1, box.min_y - 1, box.max_x + 1, box.max_y + 1);
  Point best = box.Center();
  double best_cost = FermatWeberCost(pts, best);
  double span = std::max(box.Width(), box.Height());
  for (int round = 0; round < 12; ++round) {
    for (int gx = -10; gx <= 10; ++gx) {
      for (int gy = -10; gy <= 10; ++gy) {
        const Point q{best.x + gx * span / 20.0, best.y + gy * span / 20.0};
        const double c = FermatWeberCost(pts, q);
        if (c < best_cost) {
          best_cost = c;
          best = q;
        }
      }
    }
    span /= 8.0;
  }
  return best;
}

TEST(FermatWeberCostTest, SinglePoint) {
  const std::vector<WeightedPoint> pts = {{{3, 4}, 2.0}};
  EXPECT_DOUBLE_EQ(FermatWeberCost(pts, {0, 0}), 10.0);
  EXPECT_DOUBLE_EQ(FermatWeberCost(pts, {3, 4}), 0.0);
}

TEST(LowerBoundTest, NeverExceedsOptimalCost) {
  Rng rng(61);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pts = RandomProblem(3 + rng.NextBelow(6), &rng);
    const Point opt = GridMinimize(pts);
    const double opt_cost = FermatWeberCost(pts, opt);
    for (int probe = 0; probe < 10; ++probe) {
      const Point at{rng.Uniform(-2, 12), rng.Uniform(-2, 12)};
      EXPECT_LE(FermatWeberLowerBound(pts, at), opt_cost * (1.0 + 1e-9));
    }
  }
}

TEST(LowerBoundTest, TightAtTheOptimum) {
  Rng rng(62);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = RandomProblem(5, &rng);
    FermatWeberOptions opts;
    opts.epsilon = 1e-12;
    const auto r = SolveFermatWeber(pts, opts);
    const double lb = FermatWeberLowerBound(pts, r.location);
    // Eq. 10 is asymptotically tight: at the optimum the per-axis weighted
    // medians reproduce the full cost.
    EXPECT_NEAR(lb, r.cost, 1e-6 * r.cost);
  }
}

TEST(CollinearTest, WeightedMedianOnALine) {
  const std::vector<WeightedPoint> pts = {
      {{0, 0}, 1.0}, {{1, 1}, 1.0}, {{2, 2}, 5.0}, {{3, 3}, 1.0}};
  const auto r = SolveCollinear(pts);
  ASSERT_TRUE(r.has_value());
  // The heavy point dominates: optimum at (2, 2).
  EXPECT_NEAR(r->x, 2.0, 1e-12);
  EXPECT_NEAR(r->y, 2.0, 1e-12);
}

TEST(CollinearTest, VerticalLine) {
  const std::vector<WeightedPoint> pts = {
      {{5, 0}, 1.0}, {{5, 4}, 1.0}, {{5, 10}, 1.0}};
  const auto r = SolveCollinear(pts);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 5.0, 1e-12);
  EXPECT_NEAR(r->y, 4.0, 1e-12);  // median of three
}

TEST(CollinearTest, RejectsNonCollinear) {
  const std::vector<WeightedPoint> pts = {
      {{0, 0}, 1.0}, {{1, 0}, 1.0}, {{0, 1}, 1.0}};
  EXPECT_FALSE(SolveCollinear(pts).has_value());
}

TEST(CollinearTest, AllPointsIdentical) {
  const std::vector<WeightedPoint> pts = {{{2, 3}, 1.0}, {{2, 3}, 7.0}};
  const auto r = SolveCollinear(pts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Point(2, 3));
}

TEST(TorricelliTest, EquilateralTriangleCentroid) {
  const Point a{0, 0}, b{1, 0}, c{0.5, std::sqrt(3.0) / 2.0};
  const Point t = TorricelliPoint(a, b, c);
  EXPECT_NEAR(t.x, 0.5, 1e-12);
  EXPECT_NEAR(t.y, std::sqrt(3.0) / 6.0, 1e-12);
}

TEST(TorricelliTest, MatchesIterativeSolution) {
  Rng rng(63);
  for (int trial = 0; trial < 50; ++trial) {
    // Sample triangles, skipping those with an angle >= 120 degrees (the
    // construction requires an interior optimum).
    const Point a{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Point b{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Point c{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const std::vector<WeightedPoint> pts = {{a, 1.0}, {b, 1.0}, {c, 1.0}};
    bool vertex_optimal = false;
    for (int j = 0; j < 3; ++j) {
      Point pull{0, 0};
      for (int i = 0; i < 3; ++i) {
        if (i == j) continue;
        const Point diff = pts[i].location - pts[j].location;
        const double d = diff.Norm();
        if (d < 1e-9) vertex_optimal = true;
        if (d > 0) pull = pull + diff * (1.0 / d);
      }
      if (pull.Norm() <= 1.0 + 1e-9) vertex_optimal = true;
    }
    if (vertex_optimal) continue;
    const Point t = TorricelliPoint(a, b, c);
    FermatWeberOptions opts;
    opts.epsilon = 1e-12;
    opts.use_exact_special_cases = false;
    const auto r = SolveFermatWeber(pts, opts);
    EXPECT_NEAR(FermatWeberCost(pts, t), FermatWeberCost(pts, r.location),
                1e-7 * FermatWeberCost(pts, t));
  }
}

TEST(TorricelliTest, SliverTriangleFallsBackToIterative) {
  // c sits a denormal above the segment ab: the triple fails the exact
  // collinearity test, yet the two Torricelli construction lines are
  // numerically antiparallel (denom underflows). The old code hard-aborted
  // on MOVD_CHECK(denom != 0); the fallback must return a finite point.
  const Point a{0, 0}, b{1, 0}, c{0.5, 1e-30};
  ASSERT_NE(Orient2D(a, b, c), 0.0);  // not exactly collinear
  const Point t = TorricelliPoint(a, b, c);
  ASSERT_TRUE(std::isfinite(t.x));
  ASSERT_TRUE(std::isfinite(t.y));
  // Any point on the segment is optimal with cost d(a, b) = 1.
  const std::vector<WeightedPoint> pts = {{a, 1.0}, {b, 1.0}, {c, 1.0}};
  EXPECT_NEAR(FermatWeberCost(pts, t), 1.0, 1e-9);
  EXPECT_NEAR(t.y, 0.0, 1e-9);
}

TEST(TorricelliTest, SliverSweepStaysFiniteAndNearOptimal) {
  // Sliver triangles across heights and apex positions: every result must
  // be finite with cost within stopping-rule slack of the degenerate
  // optimum d(a, b) (the apex is essentially on the segment).
  for (const double height : {1e-18, 1e-22, 1e-26, 1e-30}) {
    for (const double x : {0.2, 0.5, 0.8}) {
      const Point a{0, 0}, b{1, 0}, c{x, height};
      const Point t = TorricelliPoint(a, b, c);
      ASSERT_TRUE(std::isfinite(t.x)) << "h=" << height << " x=" << x;
      ASSERT_TRUE(std::isfinite(t.y)) << "h=" << height << " x=" << x;
      const std::vector<WeightedPoint> pts = {{a, 1.0}, {b, 1.0}, {c, 1.0}};
      EXPECT_NEAR(FermatWeberCost(pts, t), 1.0, 1e-9)
          << "h=" << height << " x=" << x;
    }
  }
}

TEST(SolveTriangleTest, ObtuseVertexWins) {
  // Angle at a is far beyond 120 degrees: the optimum is the vertex a.
  const std::vector<WeightedPoint> pts = {
      {{0, 0}, 1.0}, {{10, 0.5}, 1.0}, {{-10, 0.5}, 1.0}};
  EXPECT_EQ(SolveTriangle(pts), Point(0, 0));
}

TEST(SolveTriangleTest, HeavyVertexWins) {
  const std::vector<WeightedPoint> pts = {
      {{0, 0}, 10.0}, {{1, 0}, 1.0}, {{0, 1}, 1.0}};
  EXPECT_EQ(SolveTriangle(pts), Point(0, 0));
}

class WeiszfeldConvergenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(WeiszfeldConvergenceTest, ConvergesToGridOptimum) {
  const auto [n, epsilon] = GetParam();
  Rng rng(64 + n);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = RandomProblem(n, &rng);
    FermatWeberOptions opts;
    opts.epsilon = epsilon;
    const auto r = SolveFermatWeber(pts, opts);
    EXPECT_TRUE(r.converged);
    const double reference = FermatWeberCost(pts, GridMinimize(pts));
    // The stopping rule guarantees cost <= (1 + eps) * optimum.
    EXPECT_LE(r.cost, (1.0 + epsilon) * reference + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEpsilons, WeiszfeldConvergenceTest,
    ::testing::Combine(::testing::Values<size_t>(4, 5, 8, 16),
                       ::testing::Values(1e-2, 1e-3, 1e-5)));

TEST(WeiszfeldTest, IterateLandingOnDemandPointEscapes) {
  // Centroid of this configuration coincides with a (non-optimal) demand
  // point; the Vardi–Zhang step must escape it.
  const std::vector<WeightedPoint> pts = {{{0, 0}, 1.0},
                                          {{4, 0}, 1.0},
                                          {{-4, 0}, 1.0},
                                          {{0, 4}, 1.0},
                                          {{0, -4}, 1.0}};
  FermatWeberOptions opts;
  opts.epsilon = 1e-10;
  const auto r = SolveFermatWeber(pts, opts);
  // (0, 0) is actually optimal here (symmetric); verify the vertex case.
  EXPECT_NEAR(r.location.x, 0.0, 1e-9);
  EXPECT_NEAR(r.location.y, 0.0, 1e-9);
  // Now make it non-optimal by moving weight off-center.
  const std::vector<WeightedPoint> pts2 = {{{0, 0}, 0.1},
                                           {{4, 0}, 5.0},
                                           {{-4, 0}, 1.0},
                                           {{0, 4}, 1.0},
                                           {{0, -4}, 1.0}};
  const auto r2 = SolveFermatWeber(pts2, opts);
  EXPECT_GT(r2.location.x, 0.5);  // dragged toward the heavy point
}

TEST(RelaxationTest, AcceleratedSolveFindsSameOptimum) {
  Rng rng(69);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pts = RandomProblem(6, &rng);
    FermatWeberOptions plain;
    plain.epsilon = 1e-8;
    FermatWeberOptions fast = plain;
    fast.relaxation = 1.8;
    const auto a = SolveFermatWeber(pts, plain);
    const auto b = SolveFermatWeber(pts, fast);
    EXPECT_NEAR(a.cost, b.cost, 1e-6 * a.cost);
  }
}

TEST(RelaxationTest, AcceleratedSolveUsesFewerIterationsOnAverage) {
  Rng rng(70);
  uint64_t plain_iters = 0, fast_iters = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto pts = RandomProblem(8, &rng);
    FermatWeberOptions plain;
    plain.epsilon = 1e-9;
    FermatWeberOptions fast = plain;
    fast.relaxation = 1.8;
    plain_iters += SolveFermatWeber(pts, plain).iterations;
    fast_iters += SolveFermatWeber(pts, fast).iterations;
  }
  EXPECT_LT(fast_iters, plain_iters);
}

TEST(CostBoundTest, PrunesWhenBoundUnbeatable) {
  Rng rng(65);
  const auto pts = RandomProblem(6, &rng);
  FermatWeberOptions opts;
  opts.cost_bound = 0.0;  // nothing can beat a zero bound
  const auto r = SolveFermatWeber(pts, opts);
  EXPECT_TRUE(r.pruned);
  EXPECT_LE(r.iterations, 2);
}

TEST(CostBoundTest, DoesNotPruneTheActualWinner) {
  Rng rng(66);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = RandomProblem(5, &rng);
    FermatWeberOptions no_bound;
    no_bound.epsilon = 1e-6;
    const auto base = SolveFermatWeber(pts, no_bound);
    FermatWeberOptions with_bound = no_bound;
    with_bound.cost_bound = base.cost * 1.001;  // barely above the optimum
    const auto r = SolveFermatWeber(pts, with_bound);
    EXPECT_FALSE(r.pruned);
    EXPECT_NEAR(r.cost, base.cost, 1e-3 * base.cost);
  }
}

TEST(SharedBoundTest, BoundBelowOptimumPrunes) {
  Rng rng(71);
  const auto pts = RandomProblem(6, &rng);
  std::atomic<double> bound{0.0};  // nothing can beat a zero bound
  FermatWeberOptions opts;
  opts.shared_cost_bound = &bound;
  const auto r = SolveFermatWeber(pts, opts);
  EXPECT_TRUE(r.pruned);
  EXPECT_LE(r.iterations, 2);
}

TEST(SharedBoundTest, TiedBoundDoesNotPruneAndIsBitIdentical) {
  // The determinism linchpin: a shared bound exactly equal to the solution
  // cost must never fire (strict comparison), because the Eq. 10 lower
  // bound never exceeds the optimum, which never exceeds the achieved
  // cost. The iterate path is then identical to the unbounded run.
  Rng rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = RandomProblem(5, &rng);
    FermatWeberOptions base;
    base.epsilon = 1e-3;
    const auto unbounded = SolveFermatWeber(pts, base);
    std::atomic<double> bound{unbounded.cost};
    FermatWeberOptions tied = base;
    tied.shared_cost_bound = &bound;
    const auto r = SolveFermatWeber(pts, tied);
    EXPECT_FALSE(r.pruned);
    EXPECT_EQ(r.cost, unbounded.cost);
    EXPECT_EQ(r.location.x, unbounded.location.x);
    EXPECT_EQ(r.location.y, unbounded.location.y);
    EXPECT_EQ(r.iterations, unbounded.iterations);
  }
}

TEST(SharedBoundTest, OffsetShiftsTheComparison) {
  // The bound lives in total-cost space; the solver sees raw Fermat–Weber
  // costs plus a constant offset. A bound tied at (cost + offset) must not
  // prune; a bound strictly below it must.
  Rng rng(73);
  const auto pts = RandomProblem(5, &rng);
  FermatWeberOptions base;
  base.epsilon = 1e-3;
  const auto plain = SolveFermatWeber(pts, base);
  const double offset = 7.25;
  std::atomic<double> tied_bound{plain.cost + offset};
  FermatWeberOptions opts = base;
  opts.shared_cost_bound = &tied_bound;
  opts.shared_bound_offset = offset;
  const auto kept = SolveFermatWeber(pts, opts);
  EXPECT_FALSE(kept.pruned);
  EXPECT_EQ(kept.cost, plain.cost);
  std::atomic<double> low_bound{offset};  // lb + offset > offset immediately
  opts.shared_cost_bound = &low_bound;
  const auto cut = SolveFermatWeber(pts, opts);
  EXPECT_TRUE(cut.pruned);
}

TEST(BatchTest, ParallelMatchesSerialBitwise) {
  // The winner triple (location, cost, index) must be invariant under the
  // thread count: tied minima always complete (strict shared bound) and
  // the reduction picks the lowest index among exact-cost ties.
  Rng rng(74);
  std::vector<std::vector<WeightedPoint>> problems;
  for (int i = 0; i < 200; ++i) problems.push_back(RandomProblem(5, &rng));
  BatchOptions serial;
  serial.epsilon = 1e-4;
  const auto base = SolveFermatWeberBatch(problems, serial);
  for (const int threads : {2, 4, 8}) {
    BatchOptions par = serial;
    par.exec.threads = threads;
    const auto r = SolveFermatWeberBatch(problems, par);
    EXPECT_EQ(r.winner, base.winner) << "threads=" << threads;
    EXPECT_EQ(r.cost, base.cost) << "threads=" << threads;
    EXPECT_EQ(r.location.x, base.location.x) << "threads=" << threads;
    EXPECT_EQ(r.location.y, base.location.y) << "threads=" << threads;
  }
}

TEST(BatchTest, CostBoundMatchesOriginalWinner) {
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<WeightedPoint>> problems;
    for (int i = 0; i < 50; ++i) problems.push_back(RandomProblem(5, &rng));
    BatchOptions original;
    original.use_cost_bound = false;
    original.use_two_point_prefilter = false;
    original.epsilon = 1e-4;
    const auto base = SolveFermatWeberBatch(problems, original);
    BatchOptions cb;
    cb.epsilon = 1e-4;
    const auto fast = SolveFermatWeberBatch(problems, cb);
    // Same winner cost within stopping-rule slack.
    EXPECT_NEAR(fast.cost, base.cost, 2e-4 * base.cost + 1e-9);
    // And strictly less work.
    EXPECT_LE(fast.total_iterations, base.total_iterations);
  }
}

TEST(BatchTest, PrefilterOnlySkipsLosers) {
  Rng rng(68);
  std::vector<std::vector<WeightedPoint>> problems;
  for (int i = 0; i < 100; ++i) problems.push_back(RandomProblem(6, &rng));
  BatchOptions opts;
  const auto r = SolveFermatWeberBatch(problems, opts);
  BatchOptions no_filter = opts;
  no_filter.use_two_point_prefilter = false;
  const auto r2 = SolveFermatWeberBatch(problems, no_filter);
  EXPECT_EQ(r.winner, r2.winner);
  EXPECT_NEAR(r.cost, r2.cost, 1e-12);
}

TEST(BatchTest, SingleProblemBatch) {
  const std::vector<std::vector<WeightedPoint>> problems = {
      {{{0, 0}, 1.0}, {{2, 0}, 1.0}, {{1, 2}, 1.0}}};
  const auto r = SolveFermatWeberBatch(problems);
  EXPECT_EQ(r.winner, 0u);
  EXPECT_GT(r.cost, 0.0);
}

}  // namespace
}  // namespace movd
