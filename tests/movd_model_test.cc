#include <gtest/gtest.h>

#include "core/molq.h"
#include "model/movd_model.h"
#include "core/optimizer.h"
#include "core/overlap.h"
#include "core/weighted_distance.h"
#include "util/rng.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

TEST(MovdModelTest, IdentityMovdCoversSearchSpace) {
  const Movd id = IdentityMovd(kBounds);
  ASSERT_EQ(id.ovrs.size(), 1u);
  EXPECT_TRUE(id.ovrs[0].pois.empty());
  EXPECT_EQ(id.ovrs[0].mbr, kBounds);
  EXPECT_DOUBLE_EQ(id.ovrs[0].region.Area(), kBounds.Area());
}

TEST(MovdModelTest, MemoryBytesCountsVerticesInRrbMode) {
  Movd movd;
  Ovr ovr;
  ovr.mbr = Rect(0, 0, 10, 10);
  ovr.region = Region::FromRect(ovr.mbr);  // 4 vertices
  ovr.pois = {{0, 1}, {1, 2}};
  movd.ovrs.push_back(ovr);
  EXPECT_EQ(movd.MemoryBytes(BoundaryMode::kRealRegion),
            4 * sizeof(Point) + 2 * sizeof(PoiRef));
  EXPECT_EQ(movd.MemoryBytes(BoundaryMode::kMbr),
            2 * sizeof(Point) + 2 * sizeof(PoiRef));
  EXPECT_EQ(movd.VertexCount(), 4u);
}

TEST(MovdModelTest, FromVoronoiTagsPoisWithSetAndObject) {
  const auto vd = VoronoiDiagram::Build({{20, 20}, {80, 80}}, kBounds);
  // Map the diagram's (sorted) sites back to synthetic object ids 7 and 9.
  std::vector<int32_t> object_of_site = {7, 9};
  const Movd movd = MovdFromVoronoi(vd, /*set=*/3, object_of_site);
  ASSERT_EQ(movd.ovrs.size(), 2u);
  for (const Ovr& ovr : movd.ovrs) {
    ASSERT_EQ(ovr.pois.size(), 1u);
    EXPECT_EQ(ovr.pois[0].set, 3);
    EXPECT_TRUE(ovr.pois[0].object == 7 || ovr.pois[0].object == 9);
    EXPECT_EQ(ovr.mbr, ovr.region.Bbox());
  }
}

TEST(MovdModelTest, FromWeightedApproxDropsEmptyCells) {
  const std::vector<WeightedSite> sites = {
      MultiplicativeSite({50, 50}, 1.0),
      MultiplicativeSite({50.5, 50}, 100.0)};  // dominated -> empty
  WeightedOptions wopts;
  wopts.method = WeightedMethod::kDenseGrid;
  wopts.resolution = 64;
  const auto cells = BuildWeightedCells(sites, kBounds, wopts);
  EXPECT_TRUE(cells[1].mbr.Empty());  // the sentinel invalid Rect
  std::vector<int32_t> ids = {0, 1};
  const Movd movd = MovdFromWeightedApprox(cells, 0, ids);
  ASSERT_EQ(movd.ovrs.size(), 1u);  // the empty cell is not an OVR
  EXPECT_EQ(movd.ovrs[0].pois[0].object, 0);
  // The region is the conservative MBR cover.
  EXPECT_DOUBLE_EQ(movd.ovrs[0].region.Area(), movd.ovrs[0].mbr.Area());
}

TEST(OptimizerStatsTest, CountersAddUp) {
  Rng rng(901);
  MolqQuery query;
  for (int s = 0; s < 4; ++s) {
    ObjectSet set;
    set.name = std::string("t") += std::to_string(s);
    for (int i = 0; i < 4; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  std::vector<Movd> basic;
  for (int32_t s = 0; s < 4; ++s) {
    basic.push_back(BuildBasicMovd(query, s, kBounds, 64));
  }
  const Movd movd = OverlapAll(basic, BoundaryMode::kMbr);
  OptimizerOptions opts;
  opts.dedup_combinations = true;
  const OptimizerResult r = OptimizeMovd(query, movd, opts);
  // Examined + deduped covers every OVR.
  EXPECT_EQ(r.stats.problems + r.stats.deduped, movd.ovrs.size());
  // Skips and prunes cannot exceed problems examined.
  EXPECT_LE(r.stats.skipped_prefilter + r.stats.pruned_by_bound,
            r.stats.problems);
  // The winner is a real combination whose WGD at the location matches.
  EXPECT_NEAR(WeightedGroupDistance(query, r.location, r.group), r.cost,
              1e-9);
}

TEST(MovdModelTest, OverlapPreservesPoiSortOrder) {
  Rng rng(902);
  MolqQuery query;
  for (int s = 0; s < 3; ++s) {
    ObjectSet set;
    set.name = std::string("t") += std::to_string(s);
    for (int i = 0; i < 5; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  std::vector<Movd> basic;
  for (int32_t s = 0; s < 3; ++s) {
    basic.push_back(BuildBasicMovd(query, s, kBounds, 64));
  }
  // Fold in a scrambled order; poi lists must still come out sorted.
  const Movd out =
      OverlapAll({basic[2], basic[0], basic[1]}, BoundaryMode::kRealRegion);
  for (const Ovr& ovr : out.ovrs) {
    ASSERT_EQ(ovr.pois.size(), 3u);
    EXPECT_TRUE(std::is_sorted(ovr.pois.begin(), ovr.pois.end()));
  }
}

}  // namespace
}  // namespace movd
