// Tests of the query-algebra serving surface (src/serve): protocol
// parsing of the SKYLINE / DIVERSE / CONSTRAIN / WHATIF verbs and their
// restrictions, engine dispatch agreeing bit-exactly with the direct
// src/query evaluators, artifact-cache reuse across verbs (a warm what-if
// sweep must not rebuild overlays), and byte-identical response JSON with
// and without tracing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/molq.h"
#include "query/constrained.h"
#include "query/diversify.h"
#include "query/skyline.h"
#include "query/whatif.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery TestQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("layer") += std::to_string(s);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = rng.Uniform(0.1, 10.0);
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

Movd BuildOverlay(const MolqQuery& query, BoundaryMode mode) {
  std::vector<Movd> basic;
  for (int32_t s = 0; s < static_cast<int32_t>(query.sets.size()); ++s) {
    basic.push_back(BuildBasicMovd(query, s, kBounds, 128));
  }
  return OverlapAll(basic, mode);
}

void ExpectAnswerMatchesCandidate(const ServeAnswer& a,
                                  const SiteCandidate& c) {
  EXPECT_EQ(a.location.x, c.location.x);
  EXPECT_EQ(a.location.y, c.location.y);
  EXPECT_EQ(a.cost, c.cost);
  EXPECT_EQ(a.criteria, c.criteria);
  ASSERT_EQ(a.group.size(), c.group.size());
  for (size_t g = 0; g < a.group.size(); ++g) {
    EXPECT_EQ(a.group[g].set, c.group[g].set);
    EXPECT_EQ(a.group[g].object, c.group[g].object);
  }
}

// ---------------------------------------------------------------------------
// Protocol parsing

TEST(ServeQueryProtocolTest, ParsePolygonSpec) {
  Polygon poly;
  ASSERT_TRUE(ParsePolygonSpec("10,10;90,10;90,90;10,90", &poly).ok());
  ASSERT_EQ(poly.vertices().size(), 4u);
  EXPECT_DOUBLE_EQ(poly.vertices()[0].x, 10.0);
  EXPECT_DOUBLE_EQ(poly.vertices()[2].y, 90.0);
  EXPECT_FALSE(ParsePolygonSpec("", &poly).ok());
  EXPECT_FALSE(ParsePolygonSpec("1,1;2,2", &poly).ok());  // < 3 vertices
  EXPECT_FALSE(ParsePolygonSpec("1,1;2;3,3", &poly).ok());
  EXPECT_FALSE(ParsePolygonSpec("1,1;2,x;3,3", &poly).ok());
}

TEST(ServeQueryProtocolTest, ParseSweepSpec) {
  std::vector<std::vector<double>> sweep;
  ASSERT_TRUE(ParseSweepSpec("1,1|2,0.5|0.25,4", &sweep).ok());
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0], (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(sweep[1], (std::vector<double>{2.0, 0.5}));
  EXPECT_EQ(sweep[2], (std::vector<double>{0.25, 4.0}));
  EXPECT_FALSE(ParseSweepSpec("", &sweep).ok());
  EXPECT_FALSE(ParseSweepSpec("1,1||2,2", &sweep).ok());
  EXPECT_FALSE(ParseSweepSpec("1,x", &sweep).ok());
}

TEST(ServeQueryProtocolTest, ParsesSkylineLine) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(ParseRequestLine("SKYLINE id=s1 dataset=d layers=0,1 algo=mbrb",
                               &verb, &request)
                  .ok());
  EXPECT_EQ(verb, ServeVerb::kSolve);
  EXPECT_EQ(request.kind, ServeQueryKind::kSkyline);
  EXPECT_EQ(request.algorithm, MolqAlgorithm::kMbrb);
  // SKYLINE has no ranking depth; k= must be rejected, as must ssc.
  EXPECT_FALSE(
      ParseRequestLine("SKYLINE dataset=d k=3", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("SKYLINE dataset=d algo=ssc", &verb, &request).ok());
}

TEST(ServeQueryProtocolTest, ParsesDiverseLine) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(ParseRequestLine("DIVERSE dataset=d k=4 min_dist=12.5", &verb,
                               &request)
                  .ok());
  EXPECT_EQ(request.kind, ServeQueryKind::kDiverse);
  EXPECT_EQ(request.topk, 4u);
  EXPECT_DOUBLE_EQ(request.min_distance, 12.5);
  // Both k and min_dist are required; min_dist must be non-negative.
  EXPECT_FALSE(ParseRequestLine("DIVERSE dataset=d k=4", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("DIVERSE dataset=d min_dist=5", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("DIVERSE dataset=d k=4 min_dist=-1", &verb, &request)
          .ok());
  // min_dist is DIVERSE-only vocabulary.
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d min_dist=5", &verb, &request).ok());
}

TEST(ServeQueryProtocolTest, ParsesConstrainLine) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(ParseRequestLine(
                  "CONSTRAIN dataset=d boundary=10,10;90,10;90,90;10,90 "
                  "exclude=20,20;40,20;40,40;20,40 "
                  "exclude=60,60;80,60;80,80;60,80",
                  &verb, &request)
                  .ok());
  EXPECT_EQ(request.kind, ServeQueryKind::kConstrained);
  EXPECT_EQ(request.constraint.boundary.vertices().size(), 4u);
  ASSERT_EQ(request.constraint.exclusions.size(), 2u);  // exclude= repeats
  // At least one constraint ring is required; algo and k are rejected
  // (CONSTRAIN is RRB-only and returns the single optimum).
  EXPECT_FALSE(ParseRequestLine("CONSTRAIN dataset=d", &verb, &request).ok());
  EXPECT_FALSE(ParseRequestLine(
                   "CONSTRAIN dataset=d algo=rrb boundary=0,0;9,0;9,9", &verb,
                   &request)
                   .ok());
  EXPECT_FALSE(
      ParseRequestLine("CONSTRAIN dataset=d k=2 boundary=0,0;9,0;9,9", &verb,
                       &request)
          .ok());
  // A second boundary= is ambiguous, not an append.
  EXPECT_FALSE(ParseRequestLine(
                   "CONSTRAIN dataset=d boundary=0,0;9,0;9,9 "
                   "boundary=1,1;8,1;8,8",
                   &verb, &request)
                   .ok());
}

TEST(ServeQueryProtocolTest, ParsesWhatIfLine) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(
      ParseRequestLine("WHATIF dataset=d sweep=1,1|2,0.5 k=2", &verb, &request)
          .ok());
  EXPECT_EQ(request.kind, ServeQueryKind::kWhatIf);
  ASSERT_EQ(request.sweep.size(), 2u);
  EXPECT_EQ(request.topk, 2u);
  EXPECT_FALSE(ParseRequestLine("WHATIF dataset=d", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d sweep=1,1", &verb, &request).ok());
}

// ---------------------------------------------------------------------------
// Engine dispatch vs the direct evaluators

TEST(ServeQueryEngineTest, SkylineMatchesDirectEvaluator) {
  const MolqQuery query = TestQuery({12, 10}, 61);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.kind = ServeQueryKind::kSkyline;
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk) << resp.error;

  const Movd overlay = BuildOverlay(query, BoundaryMode::kRealRegion);
  const SkylineResult direct = SkylineFromMovd(query, overlay);
  ASSERT_EQ(resp.answers.size(), direct.skyline.size());
  for (size_t i = 0; i < direct.skyline.size(); ++i) {
    ExpectAnswerMatchesCandidate(resp.answers[i], direct.skyline[i]);
  }
}

TEST(ServeQueryEngineTest, DiverseMatchesDirectEvaluator) {
  const MolqQuery query = TestQuery({12, 10}, 62);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.kind = ServeQueryKind::kDiverse;
  request.topk = 3;
  request.min_distance = 20.0;
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk) << resp.error;

  const Movd overlay = BuildOverlay(query, BoundaryMode::kRealRegion);
  const DiverseTopKResult direct =
      DiverseTopKFromMovd(query, overlay, 3, 20.0);
  ASSERT_EQ(resp.answers.size(), direct.selected.size());
  for (size_t i = 0; i < direct.selected.size(); ++i) {
    ExpectAnswerMatchesCandidate(resp.answers[i], direct.selected[i]);
  }
}

TEST(ServeQueryEngineTest, ConstrainMatchesDirectEvaluator) {
  const MolqQuery query = TestQuery({12, 10}, 63);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.kind = ServeQueryKind::kConstrained;
  request.constraint.boundary =
      Polygon({{10, 10}, {80, 10}, {80, 80}, {10, 80}});
  request.constraint.exclusions.push_back(
      Polygon({{30, 30}, {55, 30}, {55, 55}, {30, 55}}));
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk) << resp.error;
  ASSERT_EQ(resp.answers.size(), 1u);

  const Movd overlay = BuildOverlay(query, BoundaryMode::kRealRegion);
  const ConstrainedMolqResult direct = ConstrainedMolqFromMovd(
      query, overlay, request.constraint, kBounds);
  ASSERT_TRUE(direct.feasible);
  ExpectAnswerMatchesCandidate(resp.answers[0], direct.best);

  // An infeasible constraint is an OK response with zero answers, not an
  // error.
  ServeRequest infeasible = request;
  infeasible.constraint.exclusions.clear();
  infeasible.constraint.boundary =
      Polygon({{200, 200}, {300, 200}, {300, 300}, {200, 300}});
  const ServeResponse empty = engine.Solve(infeasible);
  ASSERT_EQ(empty.status, ServeStatus::kOk) << empty.error;
  EXPECT_TRUE(empty.answers.empty());
}

TEST(ServeQueryEngineTest, WhatIfMatchesDirectEvaluatorAndReusesOverlay) {
  const MolqQuery query = TestQuery({12, 10}, 64);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);

  // Warm the RRB overlay with a plain solve first: the sweep must then be
  // served from the same artifact without rebuilding anything.
  ServeRequest solve;
  solve.dataset = "d";
  ASSERT_EQ(engine.Solve(solve).status, ServeStatus::kOk);

  ServeRequest request;
  request.dataset = "d";
  request.kind = ServeQueryKind::kWhatIf;
  request.topk = 2;
  request.sweep = {{1.0, 1.0}, {2.0, 0.5}, {0.1, 3.0}};
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk) << resp.error;
  EXPECT_TRUE(resp.cache_hit);  // the warm what-if rebuilt no artifacts
  EXPECT_TRUE(resp.answers.empty());
  ASSERT_EQ(resp.sweep_answers.size(), 3u);

  const Movd overlay = BuildOverlay(query, BoundaryMode::kRealRegion);
  std::vector<WhatIfVector> vectors(3);
  vectors[0].scale = {1.0, 1.0};
  vectors[1].scale = {2.0, 0.5};
  vectors[2].scale = {0.1, 3.0};
  WhatIfOptions opts;
  opts.topk = 2;
  const WhatIfSweepResult direct =
      WhatIfSweepFromMovd(query, overlay, vectors, opts);
  ASSERT_EQ(direct.per_vector.size(), 3u);
  for (size_t v = 0; v < 3; ++v) {
    ASSERT_EQ(resp.sweep_answers[v].size(), direct.per_vector[v].size());
    for (size_t i = 0; i < direct.per_vector[v].size(); ++i) {
      ExpectAnswerMatchesCandidate(resp.sweep_answers[v][i],
                                   direct.per_vector[v][i]);
    }
  }
}

TEST(ServeQueryEngineTest, ConstraintCacheKeysByConstraintHash) {
  const MolqQuery query = TestQuery({10, 10}, 65);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.kind = ServeQueryKind::kConstrained;
  request.constraint.boundary =
      Polygon({{10, 10}, {90, 10}, {90, 90}, {10, 90}});
  const ServeResponse cold = engine.Solve(request);
  ASSERT_EQ(cold.status, ServeStatus::kOk) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  // Same constraint: the clipped overlay is reused outright.
  const ServeResponse warm = engine.Solve(request);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_EQ(warm.answers.size(), cold.answers.size());
  for (size_t i = 0; i < cold.answers.size(); ++i) {
    EXPECT_EQ(warm.answers[i].location.x, cold.answers[i].location.x);
    EXPECT_EQ(warm.answers[i].cost, cold.answers[i].cost);
  }
  // A different constraint must NOT reuse the clipped artifact (though it
  // shares the unclipped overlay underneath).
  ServeRequest other = request;
  other.constraint.boundary = Polygon({{20, 20}, {80, 20}, {80, 80}, {20, 80}});
  const ServeResponse different = engine.Solve(other);
  ASSERT_EQ(different.status, ServeStatus::kOk);
  EXPECT_FALSE(different.cache_hit);
}

TEST(ServeQueryEngineTest, KindRestrictionsAreStructuredErrors) {
  const MolqQuery query = TestQuery({8, 8}, 66);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  // ssc has no MOVD artifacts, so no query shape can run on it.
  ServeRequest ssc;
  ssc.dataset = "d";
  ssc.kind = ServeQueryKind::kSkyline;
  ssc.algorithm = MolqAlgorithm::kSsc;
  EXPECT_EQ(engine.Solve(ssc).status, ServeStatus::kInvalidRequest);
  // Constrained clipping needs real regions; MBRB overlays carry none.
  ServeRequest mbrb;
  mbrb.dataset = "d";
  mbrb.kind = ServeQueryKind::kConstrained;
  mbrb.algorithm = MolqAlgorithm::kMbrb;
  mbrb.constraint.boundary = Polygon({{10, 10}, {90, 10}, {90, 90}, {10, 90}});
  EXPECT_EQ(engine.Solve(mbrb).status, ServeStatus::kInvalidRequest);
  // A zero-area boundary fails constraint validation up front.
  ServeRequest degenerate;
  degenerate.dataset = "d";
  degenerate.kind = ServeQueryKind::kConstrained;
  degenerate.constraint.boundary = Polygon({{10, 10}, {50, 50}, {90, 90}});
  EXPECT_EQ(engine.Solve(degenerate).status, ServeStatus::kInvalidRequest);
  // A sweep vector with the wrong arity is rejected against the dataset.
  ServeRequest bad_sweep;
  bad_sweep.dataset = "d";
  bad_sweep.kind = ServeQueryKind::kWhatIf;
  bad_sweep.sweep = {{1.0, 1.0, 1.0}};
  EXPECT_EQ(engine.Solve(bad_sweep).status, ServeStatus::kInvalidRequest);
}

TEST(ServeQueryEngineTest, ResponseJsonIsByteIdenticalWithAndWithoutTrace) {
  const MolqQuery query = TestQuery({10, 10}, 67);
  for (const ServeQueryKind kind :
       {ServeQueryKind::kSkyline, ServeQueryKind::kDiverse,
        ServeQueryKind::kWhatIf}) {
    QueryEngine plain_engine;
    plain_engine.RegisterDataset("d", query, kBounds);
    ServeRequest request;
    request.dataset = "d";
    request.kind = kind;
    if (kind == ServeQueryKind::kDiverse) {
      request.topk = 3;
      request.min_distance = 10.0;
    }
    if (kind == ServeQueryKind::kWhatIf) {
      request.topk = 2;
      request.sweep = {{1.0, 1.0}, {0.5, 2.0}};
    }
    const ServeResponse plain = plain_engine.Solve(request);
    ASSERT_EQ(plain.status, ServeStatus::kOk) << plain.error;

    QueryEngine traced_engine;
    traced_engine.RegisterDataset("d", query, kBounds);
    Trace trace;
    ServeRequest traced_request = request;
    traced_request.exec.trace = &trace;
    const ServeResponse traced = traced_engine.Solve(traced_request);
    ASSERT_EQ(traced.status, ServeStatus::kOk) << traced.error;
    EXPECT_EQ(ResponseJson(query, plain, /*include_timing=*/false),
              ResponseJson(query, traced, /*include_timing=*/false));
  }
}

}  // namespace
}  // namespace movd
