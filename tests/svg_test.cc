#include <gtest/gtest.h>

#include "viz/svg.h"

namespace movd {
namespace {

TEST(SvgTest, DocumentStructure) {
  SvgWriter svg(Rect(0, 0, 100, 50), 400.0);
  const std::string doc = svg.ToString();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("width=\"400.00\""), std::string::npos);
  EXPECT_NE(doc.find("height=\"200.00\""), std::string::npos);  // aspect kept
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
}

TEST(SvgTest, ShapesAppearInBody) {
  SvgWriter svg(Rect(0, 0, 10, 10));
  svg.AddPolygon(ConvexPolygon::FromRect(Rect(1, 1, 2, 2)), "red", "black");
  svg.AddCircle({5, 5}, 3.0, "blue");
  svg.AddLine({0, 0}, {10, 10}, "green", 2.0);
  svg.AddText({5, 5}, "label");
  svg.AddRect(Rect(3, 3, 4, 4), "none", "gray");
  const std::string doc = svg.ToString();
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find(">label</text>"), std::string::npos);
}

TEST(SvgTest, YAxisIsFlipped) {
  SvgWriter svg(Rect(0, 0, 10, 10), 100.0);
  svg.AddCircle({0, 0}, 1.0, "black");  // world origin: bottom-left
  const std::string doc = svg.ToString();
  // Bottom-left maps to pixel (0, 100).
  EXPECT_NE(doc.find("cx=\"0.00\" cy=\"100.00\""), std::string::npos);
}

TEST(SvgTest, SaveWritesFile) {
  SvgWriter svg(Rect(0, 0, 1, 1));
  svg.AddCircle({0.5, 0.5}, 2.0, "black");
  const std::string path = ::testing::TempDir() + "/out.svg";
  EXPECT_TRUE(svg.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace movd
