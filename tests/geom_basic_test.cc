#include <gtest/gtest.h>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -4.0};
  EXPECT_EQ(a + b, Point(4.0, -2.0));
  EXPECT_EQ(a - b, Point(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Point(1.5, -2.0));
}

TEST(PointTest, DotAndCross) {
  const Point a{1.0, 0.0};
  const Point b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), -1.0);
}

TEST(PointTest, DistanceMatchesPythagoras) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance2({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, LexicographicOrder) {
  EXPECT_TRUE(LessXY({0, 5}, {1, 0}));
  EXPECT_TRUE(LessXY({1, 0}, {1, 1}));
  EXPECT_FALSE(LessXY({1, 1}, {1, 1}));
}

TEST(RectTest, EmptyByDefault) {
  const Rect r;
  EXPECT_TRUE(r.Empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0, 0}));
}

TEST(RectTest, ExpandCoversPoints) {
  Rect r;
  r.Expand(Point{1, 2});
  r.Expand(Point{-1, 5});
  EXPECT_FALSE(r.Empty());
  EXPECT_EQ(r, Rect(-1, 2, 1, 5));
  EXPECT_TRUE(r.Contains(Point{0, 3}));
  EXPECT_FALSE(r.Contains(Point{0, 1}));
}

TEST(RectTest, IntersectionCommutesAndClips) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 1, 6, 3);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersect(b), Rect(2, 1, 4, 3));
  EXPECT_EQ(b.Intersect(a), Rect(2, 1, 4, 3));
}

TEST(RectTest, DisjointRectsDoNotIntersect) {
  const Rect a(0, 0, 1, 1);
  const Rect b(2, 2, 3, 3);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.Intersect(b).Empty());
}

TEST(RectTest, TouchingEdgesCountAsIntersecting) {
  const Rect a(0, 0, 1, 1);
  const Rect b(1, 0, 2, 1);
  EXPECT_TRUE(a.Intersects(b));
  const Rect i = a.Intersect(b);
  EXPECT_FALSE(i.Empty());
  EXPECT_DOUBLE_EQ(i.Area(), 0.0);
}

TEST(RectTest, EmptyAbsorbsUnderUnionAnnihilatesUnderIntersect) {
  const Rect a(0, 0, 1, 1);
  const Rect empty;
  EXPECT_EQ(Rect::Union(a, empty), a);
  EXPECT_FALSE(a.Intersects(empty));
}

TEST(RectTest, MinDistance2) {
  const Rect r(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(r.MinDistance2(Point{1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.MinDistance2(Point{3, 1}), 1.0);   // right face
  EXPECT_DOUBLE_EQ(r.MinDistance2(Point{3, 3}), 2.0);   // corner
  EXPECT_DOUBLE_EQ(r.MinDistance2(Point{-2, 1}), 4.0);  // left face
}

TEST(RectTest, ContainsRect) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(5, 5, 11, 9)));
  EXPECT_FALSE(outer.Contains(Rect()));
}

TEST(RectTest, CenterAndMargin) {
  const Rect r(0, 0, 4, 2);
  EXPECT_EQ(r.Center(), Point(2, 1));
  EXPECT_DOUBLE_EQ(r.Margin(), 6.0);
}

}  // namespace
}  // namespace movd
