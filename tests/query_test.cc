// Tests of the query algebra (src/query): the skyline's dominance-pruning
// pass must agree exactly with the O(n^2) reference, diversified top-k
// with its rescan reference (and with plain top-k at min_dist=0), and
// what-if sweeps with fresh end-to-end solves of explicitly scaled
// queries — all bit-identical across thread counts, and all accepted by
// the src/audit re-check validators (which must also catch tampering).

#include <gtest/gtest.h>

#include "audit/audit_query.h"
#include "core/molq.h"
#include "core/topk.h"
#include "model/query_model.h"
#include "query/candidates.h"
#include "query/diversify.h"
#include "query/skyline.h"
#include "query/whatif.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery RandomQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    const double type_weight = rng.Uniform(0.5, 5.0);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = type_weight;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

Movd BuildOverlay(const MolqQuery& query, BoundaryMode mode) {
  std::vector<Movd> basic;
  for (int32_t s = 0; s < static_cast<int32_t>(query.sets.size()); ++s) {
    basic.push_back(BuildBasicMovd(query, s, kBounds, 64));
  }
  return OverlapAll(basic, mode);
}

// Bitwise equality of two candidate lists — the determinism contract is
// exact doubles, not tolerances.
void ExpectSameCandidates(const std::vector<SiteCandidate>& a,
                          const std::vector<SiteCandidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].location.x, b[i].location.x) << "candidate " << i;
    EXPECT_EQ(a[i].location.y, b[i].location.y) << "candidate " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << "candidate " << i;
    EXPECT_EQ(a[i].criteria, b[i].criteria) << "candidate " << i;
    ASSERT_EQ(a[i].group.size(), b[i].group.size()) << "candidate " << i;
    for (size_t m = 0; m < a[i].group.size(); ++m) {
      EXPECT_EQ(a[i].group[m].set, b[i].group[m].set);
      EXPECT_EQ(a[i].group[m].object, b[i].group[m].object);
    }
  }
}

TEST(SkylineTest, MatchesBruteForceAcrossSeedsAndModes) {
  for (uint64_t seed = 900; seed < 922; ++seed) {
    const MolqQuery q = RandomQuery({4, 4, 3}, seed);
    for (const BoundaryMode mode :
         {BoundaryMode::kRealRegion, BoundaryMode::kMbr}) {
      const Movd movd = BuildOverlay(q, mode);
      const SkylineResult fast = SkylineFromMovd(q, movd);
      const SkylineResult slow = SkylineBruteForce(q, movd);
      ASSERT_EQ(fast.status, StatusCode::kOk);
      ASSERT_EQ(slow.status, StatusCode::kOk);
      EXPECT_EQ(fast.candidates, slow.candidates) << "seed " << seed;
      ExpectSameCandidates(fast.skyline, slow.skyline);
    }
  }
}

TEST(SkylineTest, PruningPassDoesFewerDominanceTestsThanAllPairs) {
  const MolqQuery q = RandomQuery({5, 5, 4}, 930);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  const SkylineResult fast = SkylineFromMovd(q, movd);
  const SkylineResult slow = SkylineBruteForce(q, movd);
  ASSERT_GT(fast.candidates, 2u);
  // The whole point of the sort-filter pass: candidates are tested only
  // against retained skyline members, not against every other candidate.
  EXPECT_LT(fast.dominance_tests, slow.dominance_tests);
}

TEST(SkylineTest, MembersAreMutuallyNonDominatedAndCoverTheRest) {
  const MolqQuery q = RandomQuery({4, 4}, 931);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  const SkylineResult r = SkylineFromMovd(q, movd);
  for (size_t i = 0; i < r.skyline.size(); ++i) {
    for (size_t j = 0; j < r.skyline.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(r.skyline[i].criteria, r.skyline[j].criteria));
    }
  }
  // Every enumerated candidate outside the skyline is dominated by some
  // member.
  std::vector<SiteCandidate> all;
  CandidateOptions copts;
  ASSERT_EQ(EnumerateCandidates(q, movd, copts, &all), StatusCode::kOk);
  for (const SiteCandidate& c : all) {
    bool in_skyline = false;
    for (const SiteCandidate& s : r.skyline) {
      if (s.group.size() == c.group.size() && !GroupBefore(s.group, c.group) &&
          !GroupBefore(c.group, s.group)) {
        in_skyline = true;
      }
    }
    if (in_skyline) continue;
    bool dominated = false;
    for (const SiteCandidate& s : r.skyline) {
      if (Dominates(s.criteria, c.criteria)) dominated = true;
    }
    EXPECT_TRUE(dominated);
  }
}

TEST(SkylineTest, BitIdenticalAcrossThreadCounts) {
  const MolqQuery q = RandomQuery({5, 4, 4}, 932);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  CandidateOptions serial;
  const SkylineResult base = SkylineFromMovd(q, movd, serial);
  for (const int threads : {2, 4, 8}) {
    CandidateOptions par;
    par.exec.threads = threads;
    const SkylineResult r = SkylineFromMovd(q, movd, par);
    ExpectSameCandidates(base.skyline, r.skyline);
  }
}

TEST(SkylineTest, AuditAcceptsGoodAndCatchesTampering) {
  const MolqQuery q = RandomQuery({4, 4}, 933);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  SkylineResult r = SkylineFromMovd(q, movd);
  EXPECT_TRUE(AuditSkyline(q, r).ok());
  ASSERT_FALSE(r.skyline.empty());
  // A corrupted cost must be flagged by the independent recomputation.
  SkylineResult bad_cost = r;
  bad_cost.skyline.front().cost += 1.0;
  EXPECT_FALSE(AuditSkyline(q, bad_cost).ok());
  // Appending a genuine but dominated candidate (self-consistent costs, so
  // only the skyline contract is broken) must be refused by the pairwise
  // dominance replay.
  std::vector<SiteCandidate> all;
  CandidateOptions copts;
  ASSERT_EQ(EnumerateCandidates(q, movd, copts, &all), StatusCode::kOk);
  for (const SiteCandidate& c : all) {
    bool dominated = false;
    for (const SiteCandidate& s : r.skyline) {
      if (Dominates(s.criteria, c.criteria)) dominated = true;
    }
    if (!dominated) continue;
    SkylineResult bad_member = r;
    bad_member.skyline.push_back(c);
    EXPECT_FALSE(AuditSkyline(q, bad_member).ok());
    break;
  }
}

TEST(DiverseTopKTest, MatchesBruteForceAcrossSeeds) {
  for (uint64_t seed = 940; seed < 962; ++seed) {
    const MolqQuery q = RandomQuery({4, 4, 3}, seed);
    const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
    for (const double min_dist : {0.0, 10.0, 40.0}) {
      const DiverseTopKResult fast =
          DiverseTopKFromMovd(q, movd, 3, min_dist);
      const DiverseTopKResult slow =
          DiverseTopKBruteForce(q, movd, 3, min_dist);
      ASSERT_EQ(fast.status, StatusCode::kOk);
      ExpectSameCandidates(fast.selected, slow.selected);
    }
  }
}

TEST(DiverseTopKTest, ZeroMinDistanceIsExactlyTopK) {
  for (uint64_t seed = 970; seed < 975; ++seed) {
    const MolqQuery q = RandomQuery({5, 4}, seed);
    const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
    const size_t k = 4;
    const DiverseTopKResult diverse = DiverseTopKFromMovd(q, movd, k, 0.0);
    MolqOptions mopts;
    const MolqResult top = TopKFromMovd(q, movd, k, mopts);
    ASSERT_EQ(diverse.selected.size(), top.ranked.size());
    for (size_t i = 0; i < top.ranked.size(); ++i) {
      EXPECT_EQ(diverse.selected[i].location.x, top.ranked[i].location.x);
      EXPECT_EQ(diverse.selected[i].location.y, top.ranked[i].location.y);
      EXPECT_EQ(diverse.selected[i].cost, top.ranked[i].cost);
      EXPECT_EQ(diverse.selected[i].group.size(), top.ranked[i].group.size());
    }
    EXPECT_EQ(diverse.skipped, 0u);
  }
}

TEST(DiverseTopKTest, SelectionRespectsMinDistanceAndAuditAgrees) {
  const MolqQuery q = RandomQuery({5, 5}, 980);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  const double min_dist = 25.0;
  const DiverseTopKResult r = DiverseTopKFromMovd(q, movd, 4, min_dist);
  for (size_t i = 0; i < r.selected.size(); ++i) {
    for (size_t j = i + 1; j < r.selected.size(); ++j) {
      const double dx = r.selected[i].location.x - r.selected[j].location.x;
      const double dy = r.selected[i].location.y - r.selected[j].location.y;
      EXPECT_GE(dx * dx + dy * dy, min_dist * min_dist);
    }
  }
  EXPECT_TRUE(AuditDiverseTopK(q, 4, min_dist, r).ok());
  // Tampering: duplicating a selected site violates the pairwise distance
  // floor (distance 0), which the validator replays exactly.
  if (!r.selected.empty()) {
    DiverseTopKResult bad = r;
    bad.selected.push_back(bad.selected.front());
    EXPECT_FALSE(AuditDiverseTopK(q, 5, min_dist, bad).ok());
  }
}

TEST(DiverseTopKTest, BitIdenticalAcrossThreadCounts) {
  const MolqQuery q = RandomQuery({5, 4, 4}, 981);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  CandidateOptions serial;
  const DiverseTopKResult base =
      DiverseTopKFromMovd(q, movd, 3, 15.0, serial);
  for (const int threads : {2, 4, 8}) {
    CandidateOptions par;
    par.exec.threads = threads;
    const DiverseTopKResult r = DiverseTopKFromMovd(q, movd, 3, 15.0, par);
    ExpectSameCandidates(base.selected, r.selected);
  }
}

TEST(WhatIfTest, IdentityVectorReproducesTopKExactly) {
  const MolqQuery q = RandomQuery({4, 4}, 990);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  WhatIfVector identity;
  identity.scale = {1.0, 1.0};
  WhatIfOptions opts;
  opts.topk = 3;
  const WhatIfSweepResult sweep =
      WhatIfSweepFromMovd(q, movd, {identity}, opts);
  ASSERT_EQ(sweep.status, StatusCode::kOk);
  ASSERT_EQ(sweep.per_vector.size(), 1u);
  MolqOptions mopts;
  const MolqResult top = TopKFromMovd(q, movd, 3, mopts);
  ASSERT_EQ(sweep.per_vector[0].size(), top.ranked.size());
  for (size_t i = 0; i < top.ranked.size(); ++i) {
    EXPECT_EQ(sweep.per_vector[0][i].location.x, top.ranked[i].location.x);
    EXPECT_EQ(sweep.per_vector[0][i].location.y, top.ranked[i].location.y);
    EXPECT_EQ(sweep.per_vector[0][i].cost, top.ranked[i].cost);
  }
}

TEST(WhatIfTest, SweepMatchesFreshSolvesOfScaledQueries) {
  // The artifact-reuse claim: evaluating a scaled query over the *base*
  // query's MOVD equals rebuilding the whole pipeline for that scaled
  // query — per-set type-weight scaling preserves every set's internal
  // ranking, so the diagrams coincide.
  for (uint64_t seed = 991; seed < 996; ++seed) {
    const MolqQuery q = RandomQuery({4, 3, 3}, seed);
    const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
    std::vector<WhatIfVector> vectors(2);
    vectors[0].scale = {1.5, 0.5, 1.0};
    vectors[1].scale = {0.25, 2.0, 3.0};
    WhatIfOptions opts;
    opts.topk = 2;
    const WhatIfSweepResult sweep =
        WhatIfSweepFromMovd(q, movd, vectors, opts);
    ASSERT_EQ(sweep.status, StatusCode::kOk);
    ASSERT_EQ(sweep.per_vector.size(), vectors.size());
    for (size_t v = 0; v < vectors.size(); ++v) {
      const MolqQuery scaled = ApplyWhatIfVector(q, vectors[v]);
      MolqOptions mopts;
      const MolqResult fresh = SolveMolqTopK(scaled, kBounds, 2, mopts);
      ASSERT_EQ(sweep.per_vector[v].size(), fresh.ranked.size());
      for (size_t i = 0; i < fresh.ranked.size(); ++i) {
        EXPECT_EQ(sweep.per_vector[v][i].location.x,
                  fresh.ranked[i].location.x);
        EXPECT_EQ(sweep.per_vector[v][i].location.y,
                  fresh.ranked[i].location.y);
        EXPECT_EQ(sweep.per_vector[v][i].cost, fresh.ranked[i].cost);
      }
    }
  }
}

TEST(WhatIfTest, BitIdenticalAcrossThreadCountsAndAuditAgrees) {
  const MolqQuery q = RandomQuery({4, 4}, 997);
  const Movd movd = BuildOverlay(q, BoundaryMode::kRealRegion);
  std::vector<WhatIfVector> vectors(3);
  vectors[0].scale = {1.0, 1.0};
  vectors[1].scale = {2.0, 0.5};
  vectors[2].scale = {0.1, 5.0};
  WhatIfOptions serial;
  serial.topk = 2;
  const WhatIfSweepResult base = WhatIfSweepFromMovd(q, movd, vectors, serial);
  EXPECT_TRUE(AuditWhatIfSweep(q, vectors, 2, base).ok());
  for (const int threads : {2, 4, 8}) {
    WhatIfOptions par = serial;
    par.exec.threads = threads;
    const WhatIfSweepResult r = WhatIfSweepFromMovd(q, movd, vectors, par);
    ASSERT_EQ(r.per_vector.size(), base.per_vector.size());
    for (size_t v = 0; v < base.per_vector.size(); ++v) {
      ExpectSameCandidates(base.per_vector[v], r.per_vector[v]);
    }
  }
  // Tampering: a corrupted cost in any ranking must be caught against the
  // scaled query's recomputation.
  WhatIfSweepResult bad = base;
  ASSERT_FALSE(bad.per_vector.empty());
  ASSERT_FALSE(bad.per_vector[1].empty());
  bad.per_vector[1][0].cost *= 0.5;
  EXPECT_FALSE(AuditWhatIfSweep(q, vectors, 2, bad).ok());
}

TEST(WhatIfTest, RejectsMalformedVectors) {
  const MolqQuery q = RandomQuery({3, 3}, 998);
  WhatIfVector short_vec;
  short_vec.scale = {1.0};
  EXPECT_FALSE(ValidateWhatIfVector(q, short_vec).ok());
  WhatIfVector nonpositive;
  nonpositive.scale = {1.0, 0.0};
  EXPECT_FALSE(ValidateWhatIfVector(q, nonpositive).ok());
  WhatIfVector good;
  good.scale = {2.0, 0.5};
  EXPECT_TRUE(ValidateWhatIfVector(q, good).ok());
}

}  // namespace
}  // namespace movd
