#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "voronoi/delaunay.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  return pts;
}

TEST(VoronoiTest, SingleSiteOwnsWholeBounds) {
  const auto vd = VoronoiDiagram::Build({{50, 50}}, kBounds);
  ASSERT_EQ(vd.cells().size(), 1u);
  EXPECT_DOUBLE_EQ(vd.cells()[0].region.Area(), kBounds.Area());
}

TEST(VoronoiTest, TwoSitesSplitAlongBisector) {
  const auto vd = VoronoiDiagram::Build({{25, 50}, {75, 50}}, kBounds);
  ASSERT_EQ(vd.cells().size(), 2u);
  EXPECT_DOUBLE_EQ(vd.cells()[0].region.Area(), 5000.0);
  EXPECT_DOUBLE_EQ(vd.cells()[1].region.Area(), 5000.0);
  EXPECT_TRUE(vd.cells()[0].region.Contains({10, 50}));
  EXPECT_FALSE(vd.cells()[0].region.Contains({90, 50}));
}

TEST(VoronoiTest, DuplicateSitesCollapse) {
  const auto vd =
      VoronoiDiagram::Build({{25, 50}, {25, 50}, {75, 50}}, kBounds);
  EXPECT_EQ(vd.sites().size(), 2u);
}

// The partition property: cells tile the bounds (areas sum to the bounds'
// area) and every random point lies in the cell of its nearest site.
class VoronoiPartitionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VoronoiPartitionTest, CellsTileBounds) {
  const auto sites = RandomPoints(GetParam(), 51 + GetParam());
  const auto vd = VoronoiDiagram::Build(sites, kBounds);
  double total = 0.0;
  for (const auto& cell : vd.cells()) total += cell.region.Area();
  EXPECT_NEAR(total, kBounds.Area(), 1e-6 * kBounds.Area());
}

TEST_P(VoronoiPartitionTest, RandomPointsLandInNearestSiteCell) {
  const auto sites = RandomPoints(GetParam(), 52 + GetParam());
  const auto vd = VoronoiDiagram::Build(sites, kBounds);
  Rng rng(53);
  for (int i = 0; i < 200; ++i) {
    const Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const int32_t nearest = vd.NearestSiteBrute(q);
    // The nearest site's cell must contain q (up to boundary ties, where
    // several cells may contain it; the nearest one always does).
    EXPECT_TRUE(vd.cells()[nearest].region.Contains(q))
        << "site " << nearest << " q=(" << q.x << "," << q.y << ")";
  }
}

TEST_P(VoronoiPartitionTest, EveryCellContainsItsSite) {
  const auto sites = RandomPoints(GetParam(), 54 + GetParam());
  const auto vd = VoronoiDiagram::Build(sites, kBounds);
  for (size_t i = 0; i < vd.sites().size(); ++i) {
    EXPECT_TRUE(vd.cells()[i].region.Contains(vd.sites()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VoronoiPartitionTest,
                         ::testing::Values(2, 5, 20, 100, 400));

TEST(VoronoiTest, AgreesWithDelaunayNeighbours) {
  // The set of sites whose bisectors bound an interior cell equals the
  // site's Delaunay neighbours (for cells not clipped by the bounds).
  const auto sites = RandomPoints(80, 55);
  const auto vd = VoronoiDiagram::Build(sites, kBounds);
  const Delaunay dt(vd.sites());
  Rng rng(56);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.Uniform(20, 80), rng.Uniform(20, 80)};
    // Voronoi assignment via cells == nearest by Delaunay-verified brute.
    const int32_t nearest = vd.NearestSiteBrute(q);
    EXPECT_TRUE(vd.cells()[nearest].region.Contains(q));
  }
  EXPECT_TRUE(dt.VerifyDelaunay());
}

TEST(VoronoiTest, GridSitesDegenerateConfiguration) {
  std::vector<Point> sites;
  for (int x = 1; x <= 5; ++x) {
    for (int y = 1; y <= 5; ++y) {
      sites.push_back({x * 100.0 / 6.0, y * 100.0 / 6.0});
    }
  }
  const auto vd = VoronoiDiagram::Build(sites, kBounds);
  double total = 0.0;
  for (const auto& cell : vd.cells()) total += cell.region.Area();
  EXPECT_NEAR(total, kBounds.Area(), 1e-6 * kBounds.Area());
}

// The two cell-construction strategies must produce identical diagrams.
class VoronoiStrategyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VoronoiStrategyTest, DelaunayAndKnnBuildersAgree) {
  const auto sites = RandomPoints(GetParam(), 58 + GetParam());
  const auto knn = VoronoiDiagram::Build(
      sites, kBounds, VoronoiDiagram::Strategy::kNearestNeighbor);
  const auto del = VoronoiDiagram::Build(
      sites, kBounds, VoronoiDiagram::Strategy::kDelaunay);
  ASSERT_EQ(knn.sites().size(), del.sites().size());
  for (size_t i = 0; i < knn.cells().size(); ++i) {
    EXPECT_NEAR(knn.cells()[i].region.Area(), del.cells()[i].region.Area(),
                1e-6 * std::max(1.0, knn.cells()[i].region.Area()))
        << "cell " << i;
  }
  Rng rng(59);
  for (int t = 0; t < 100; ++t) {
    const Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const int32_t nearest = knn.NearestSiteBrute(q);
    EXPECT_TRUE(del.cells()[nearest].region.Contains(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VoronoiStrategyTest,
                         ::testing::Values(1, 2, 3, 10, 60, 300));

TEST(VoronoiStrategyTest, AgreeOnDegenerateGrid) {
  std::vector<Point> sites;
  for (int x = 1; x <= 4; ++x) {
    for (int y = 1; y <= 4; ++y) {
      sites.push_back({x * 20.0, y * 20.0});
    }
  }
  const auto knn = VoronoiDiagram::Build(
      sites, kBounds, VoronoiDiagram::Strategy::kNearestNeighbor);
  const auto del = VoronoiDiagram::Build(
      sites, kBounds, VoronoiDiagram::Strategy::kDelaunay);
  for (size_t i = 0; i < knn.cells().size(); ++i) {
    EXPECT_NEAR(knn.cells()[i].region.Area(), del.cells()[i].region.Area(),
                1e-9);
  }
}

TEST(VoronoiStrategyTest, AgreeOnCollinearSites) {
  const std::vector<Point> sites = {{20, 50}, {40, 50}, {60, 50}, {80, 50}};
  const auto knn = VoronoiDiagram::Build(
      sites, kBounds, VoronoiDiagram::Strategy::kNearestNeighbor);
  const auto del = VoronoiDiagram::Build(
      sites, kBounds, VoronoiDiagram::Strategy::kDelaunay);
  // Strips [0,30], [30,50], [50,70], [70,100] x [0,100].
  const double expected[] = {3000.0, 2000.0, 2000.0, 3000.0};
  for (size_t i = 0; i < knn.cells().size(); ++i) {
    EXPECT_NEAR(knn.cells()[i].region.Area(), del.cells()[i].region.Area(),
                1e-9);
    EXPECT_NEAR(knn.cells()[i].region.Area(), expected[i], 1e-9);
  }
}

// The dense reference construction through the WeightedOptions dispatch
// (direct ApproximateWeightedVoronoi calls are lint-rejected). These tests
// assert dense-sampler semantics — per-cell sample counts over the exact
// requested lattice — so they pin the method explicitly.
std::vector<WeightedCellApprox> DenseCells(const std::vector<WeightedSite>& ws,
                                           int resolution) {
  WeightedOptions opts;
  opts.method = WeightedMethod::kDenseGrid;
  opts.resolution = resolution;
  return BuildWeightedCells(ws, kBounds, opts);
}

TEST(WeightedVoronoiTest, EqualWeightsMatchOrdinaryAssignment) {
  const auto sites = RandomPoints(10, 57);
  std::vector<WeightedSite> ws;
  for (const Point& p : sites) ws.push_back(MultiplicativeSite(p, 2.5));
  const auto cells = DenseCells(ws, 64);
  const auto vd = VoronoiDiagram::Build(sites, kBounds);
  // Each weighted cell's MBR must cover the corresponding ordinary cell
  // (the diagram sorts its sites, so match cells through the site point).
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_FALSE(cells[i].empty);
    for (size_t j = 0; j < vd.sites().size(); ++j) {
      if (vd.sites()[j] == sites[i]) {
        EXPECT_TRUE(cells[i].mbr.Intersects(vd.cells()[j].region.Bbox()));
      }
    }
  }
}

TEST(WeightedVoronoiTest, HeavyWeightShrinksCell) {
  // Multiplicative weights: larger weight means larger weighted distance,
  // hence a smaller dominance region.
  const std::vector<WeightedSite> ws = {MultiplicativeSite({30, 50}, 1.0),
                                        MultiplicativeSite({70, 50}, 4.0)};
  const auto cells = DenseCells(ws, 128);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_GT(cells[0].sample_count, 3 * cells[1].sample_count);
}

TEST(WeightedVoronoiTest, AdditiveWeightsShiftBoundary) {
  const std::vector<WeightedSite> ws = {AdditiveSite({30, 50}, 0.0),
                                        AdditiveSite({70, 50}, 20.0)};
  const auto cells = DenseCells(ws, 128);
  ASSERT_EQ(cells.size(), 2u);
  // The additive handicap moves the boundary 10 units toward site 1:
  // boundary near x = 60.
  EXPECT_GT(cells[0].sample_count, cells[1].sample_count);
  EXPECT_GT(cells[0].mbr.max_x, 55.0);
}

TEST(WeightedVoronoiTest, AffineSitesCombineBothDeformations) {
  // Site 0 is cheap per meter but carries a fixed cost; site 1 is the
  // reverse. Near site 1 the fixed cost dominates; far away the slope does.
  const std::vector<WeightedSite> ws = {{{30, 50}, 1.0, 30.0},
                                        {{70, 50}, 3.0, 0.0}};
  const auto cells = DenseCells(ws, 128);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_FALSE(cells[0].empty);
  EXPECT_FALSE(cells[1].empty);
  // Cross-check a few sample dominances directly against the metric.
  EXPECT_LT(WeightedSiteDistance({70, 50}, ws[1]),
            WeightedSiteDistance({70, 50}, ws[0]));
  EXPECT_LT(WeightedSiteDistance({0, 50}, ws[0]),
            WeightedSiteDistance({0, 50}, ws[1]));
}

TEST(WeightedVoronoiTest, DominatedSiteHasEmptyCell) {
  // A heavily penalised site coincident in area with a light one gets no
  // samples at all.
  const std::vector<WeightedSite> ws = {
      MultiplicativeSite({50, 50}, 1.0),
      MultiplicativeSite({50.5, 50}, 50.0)};
  const auto cells = DenseCells(ws, 64);
  EXPECT_FALSE(cells[0].empty);
  EXPECT_TRUE(cells[1].empty);
  // Empty cells carry the sentinel invalid Rect so downstream consumers
  // can never mistake them for a real (even degenerate) region.
  EXPECT_TRUE(cells[1].mbr.Empty());
  EXPECT_TRUE(cells[1].hull.Empty());
  EXPECT_TRUE(cells[1].cover.empty());
}

}  // namespace
}  // namespace movd
