#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace movd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::DataLoss("truncated record 7");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated record 7");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: truncated record 7");
}

TEST(StatusTest, WireNamesMatchTheServeProtocol) {
  // These spellings are on the wire (serve ERR lines); renaming any of
  // them is a protocol break.
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_REQUEST");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL_ERROR");
}

TEST(StatusTest, HistoricalSpellingsAliasTheCanonicalCodes) {
  // MolqStatus/ServeStatus are aliases of StatusCode; the old enumerator
  // spellings must compare equal to their canonical values so pre-refactor
  // call sites keep their meaning.
  EXPECT_EQ(StatusCode::kInvalidRequest, StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusCode::kInternalError, StatusCode::kInternal);
}

TEST(StatusOrTest, ImplicitFromValue) {
  const StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, ImplicitFromError) {
  const StatusOr<std::string> v = Status::NotFound("no such key");
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.status().message(), "no such key");
}

TEST(StatusOrTest, MoveOutOfValue) {
  StatusOr<std::string> v = std::string("payload");
  const std::string out = std::move(*v);
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, ArrowAccessesMembers) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace movd
