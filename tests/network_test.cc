#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "network/graph.h"
#include "network/network_molq.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

// A 3x3 grid network with unit spacing:
//   6 7 8
//   3 4 5
//   0 1 2
RoadNetwork GridNetwork() {
  std::vector<Point> vertices;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      vertices.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  std::vector<RoadNetwork::Edge> edges;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      const int32_t v = y * 3 + x;
      if (x < 2) edges.push_back({v, v + 1, 0.0});
      if (y < 2) edges.push_back({v, v + 3, 0.0});
    }
  }
  return RoadNetwork(std::move(vertices), edges);
}

TEST(RoadNetworkTest, GridBasics) {
  const RoadNetwork net = GridNetwork();
  EXPECT_EQ(net.num_vertices(), 9u);
  EXPECT_EQ(net.num_edges(), 12u);
  EXPECT_TRUE(net.IsConnected());
  EXPECT_EQ(net.NearestVertex({0.1, 0.2}), 0);
  EXPECT_EQ(net.NearestVertex({1.9, 1.8}), 8);
}

TEST(RoadNetworkTest, SelfLoopsDropped) {
  const RoadNetwork net({{0, 0}, {1, 0}}, {{0, 0, 0.0}, {0, 1, 0.0}});
  EXPECT_EQ(net.num_edges(), 1u);
}

TEST(RoadNetworkTest, ExplicitLengthsRespected) {
  const RoadNetwork net({{0, 0}, {1, 0}}, {{0, 1, 42.0}});
  const auto dist = ShortestDistances(net, 0);
  EXPECT_DOUBLE_EQ(dist[1], 42.0);
}

TEST(DijkstraTest, GridDistancesAreManhattan) {
  const RoadNetwork net = GridNetwork();
  const auto dist = ShortestDistances(net, 0);
  // Unit grid: network distance == Manhattan distance from corner 0.
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_DOUBLE_EQ(dist[y * 3 + x], x + y);
    }
  }
}

TEST(DijkstraTest, DisconnectedVerticesUnreachable) {
  const RoadNetwork net({{0, 0}, {1, 0}, {5, 5}}, {{0, 1, 0.0}});
  EXPECT_FALSE(net.IsConnected());
  const auto dist = ShortestDistances(net, 0);
  EXPECT_EQ(dist[2], RoadNetwork::kUnreachable);
}

TEST(DijkstraTest, MultiSourceIsMinOfSingleSources) {
  const RoadNetwork net = RandomRoadNetwork(150, kBounds, 0.5, 801);
  ASSERT_TRUE(net.IsConnected());
  const std::vector<int32_t> sources = {3, 77, 120};
  const auto multi = NearestSourceDistances(net, sources);
  std::vector<std::vector<double>> singles;
  for (const int32_t s : sources) {
    singles.push_back(ShortestDistances(net, s));
  }
  for (size_t v = 0; v < net.num_vertices(); ++v) {
    double want = RoadNetwork::kUnreachable;
    for (const auto& d : singles) want = std::min(want, d[v]);
    EXPECT_DOUBLE_EQ(multi[v], want);
  }
}

TEST(RandomRoadNetworkTest, AlwaysConnectedAndDeterministic) {
  for (const double keep : {0.0001, 0.3, 1.0}) {
    const RoadNetwork net = RandomRoadNetwork(200, kBounds, keep, 802);
    EXPECT_TRUE(net.IsConnected()) << keep;
    EXPECT_GE(net.num_edges(), net.num_vertices() - 1);  // spanning skeleton
  }
  const RoadNetwork a = RandomRoadNetwork(100, kBounds, 0.5, 803);
  const RoadNetwork b = RandomRoadNetwork(100, kBounds, 0.5, 803);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(RandomRoadNetworkTest, FullFractionKeepsDelaunaySize) {
  const RoadNetwork full = RandomRoadNetwork(100, kBounds, 1.0, 804);
  const RoadNetwork sparse = RandomRoadNetwork(100, kBounds, 0.0001, 804);
  EXPECT_GT(full.num_edges(), sparse.num_edges());
}

class NetworkMolqTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkMolqTest, FastSolverMatchesBruteForce) {
  const RoadNetwork net = RandomRoadNetwork(120, kBounds, 0.4, GetParam());
  Rng rng(GetParam() + 1);
  std::vector<NetworkObjectSet> sets(3);
  for (size_t s = 0; s < sets.size(); ++s) {
    sets[s].type_weight = rng.Uniform(0.5, 5.0);
    for (int i = 0; i < 4; ++i) {
      sets[s].vertices.push_back(
          static_cast<int32_t>(rng.NextBelow(net.num_vertices())));
    }
  }
  const auto fast = SolveNetworkMolq(net, sets);
  const auto brute = SolveNetworkMolqBruteForce(net, sets);
  EXPECT_DOUBLE_EQ(fast.cost, brute.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkMolqTest,
                         ::testing::Values(811, 812, 813, 814));

TEST(NetworkMolqTest, ObjectVertexIsOptimalWhenAllTypesShareIt) {
  const RoadNetwork net = GridNetwork();
  std::vector<NetworkObjectSet> sets(3);
  for (auto& set : sets) set.vertices = {4};  // all types at the center
  const auto r = SolveNetworkMolq(net, sets);
  EXPECT_EQ(r.vertex, 4);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(NetworkMolqTest, GridCenterBeatsCorners) {
  const RoadNetwork net = GridNetwork();
  // One object of each type at opposite corners: center minimises the sum.
  std::vector<NetworkObjectSet> sets(2);
  sets[0].vertices = {0};
  sets[1].vertices = {8};
  const auto r = SolveNetworkMolq(net, sets);
  // Every vertex on a monotone 0->8 path costs 4; the answer must be one.
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

TEST(NetworkMolqTest, SnapQueryChecksPreconditions) {
  const RoadNetwork net = GridNetwork();
  MolqQuery query;
  ObjectSet set;
  set.name = "school";
  SpatialObject obj;
  obj.location = {0.2, 0.1};
  obj.type_weight = 2.0;
  set.objects.push_back(obj);
  obj.location = {1.8, 1.7};
  set.objects.push_back(obj);
  query.sets.push_back(set);
  const auto snapped = SnapQueryToNetwork(net, query);
  ASSERT_EQ(snapped.size(), 1u);
  EXPECT_EQ(snapped[0].type_weight, 2.0);
  EXPECT_EQ(snapped[0].vertices, (std::vector<int32_t>{0, 8}));
}

TEST(NetworkMolqTest, UnreachablePocketsNeverWin) {
  // Two disconnected components; all objects live in component A. Every
  // vertex of component B has infinite cost, so the optimum lands in A.
  std::vector<Point> vertices = {{0, 0}, {1, 0}, {2, 0},   // A
                                 {10, 10}, {11, 10}};      // B
  std::vector<RoadNetwork::Edge> edges = {
      {0, 1, 0.0}, {1, 2, 0.0}, {3, 4, 0.0}};
  const RoadNetwork net(std::move(vertices), edges);
  ASSERT_FALSE(net.IsConnected());
  std::vector<NetworkObjectSet> sets(2);
  sets[0].vertices = {0};
  sets[1].vertices = {2};
  const auto r = SolveNetworkMolq(net, sets);
  EXPECT_LE(r.vertex, 2);  // somewhere in component A (all tie at 2.0)
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(NetworkMolqTest, NetworkAnswerDiffersFromEuclideanOnSparseGraphs) {
  // On a sparse network, detours matter: the network optimum's cost is at
  // least the Euclidean-style straight-line bound.
  const RoadNetwork net = RandomRoadNetwork(150, kBounds, 0.05, 815);
  Rng rng(816);
  std::vector<NetworkObjectSet> sets(2);
  for (auto& set : sets) {
    for (int i = 0; i < 3; ++i) {
      set.vertices.push_back(
          static_cast<int32_t>(rng.NextBelow(net.num_vertices())));
    }
  }
  const auto r = SolveNetworkMolq(net, sets);
  double euclid = 0.0;
  const Point at = net.vertices()[r.vertex];
  for (const auto& set : sets) {
    double best = RoadNetwork::kUnreachable;
    for (const int32_t v : set.vertices) {
      best = std::min(best, Distance(at, net.vertices()[v]));
    }
    euclid += best;
  }
  EXPECT_GE(r.cost, euclid - 1e-9);
}

}  // namespace
}  // namespace movd
