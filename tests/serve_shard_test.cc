// Tests of the sharded serving layer (src/serve/shard.h): the shard-grid
// topology helpers, deterministic routing, metrics merging, and the
// headline contract — for every shard count, every query verb answers
// byte-identically to the single-replica engine, before and after
// interleaved mutations (DESIGN.md §15).
//
// Test names are prefixed Serve* so the TSan CI job's filter picks them
// up alongside the other serving tests.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/molq.h"
#include "geom/polygon.h"
#include "model/update_model.h"
#include "serve/artifact_cache.h"
#include "serve/engine_api.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/shard.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery TestQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("layer") += std::to_string(s);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = rng.Uniform(0.1, 10.0);
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

// ---------------------------------------------------------------------------
// Shard-grid topology

TEST(ServeShardGridTest, FactorizesNearSquare) {
  EXPECT_EQ(MakeShardGrid(1).nx, 1);
  EXPECT_EQ(MakeShardGrid(1).ny, 1);
  EXPECT_EQ(MakeShardGrid(2).nx, 2);
  EXPECT_EQ(MakeShardGrid(2).ny, 1);
  EXPECT_EQ(MakeShardGrid(4).nx, 2);
  EXPECT_EQ(MakeShardGrid(4).ny, 2);
  EXPECT_EQ(MakeShardGrid(6).nx, 3);
  EXPECT_EQ(MakeShardGrid(6).ny, 2);
  EXPECT_EQ(MakeShardGrid(7).nx, 7);  // prime: one row of strips
  EXPECT_EQ(MakeShardGrid(7).ny, 1);
  EXPECT_EQ(MakeShardGrid(12).nx, 4);
  EXPECT_EQ(MakeShardGrid(12).ny, 3);
  for (int n = 1; n <= 16; ++n) {
    const ShardGrid grid = MakeShardGrid(n);
    EXPECT_EQ(grid.nx * grid.ny, n);
    EXPECT_LE(grid.ny, grid.nx);
  }
}

TEST(ServeShardGridTest, RegionsTileWorldExactly) {
  for (const int shards : {1, 2, 4, 6, 7, 9}) {
    const ShardGrid grid = MakeShardGrid(shards);
    for (int i = 0; i < shards; ++i) {
      const Rect cell = ShardRegionRect(kBounds, grid, i);
      const int col = i % grid.nx;
      const int row = i / grid.nx;
      // Outer edges reuse the world bounds exactly — no fp slivers.
      if (col == 0) {
        EXPECT_EQ(cell.min_x, kBounds.min_x);
      }
      if (col == grid.nx - 1) {
        EXPECT_EQ(cell.max_x, kBounds.max_x);
      }
      if (row == 0) {
        EXPECT_EQ(cell.min_y, kBounds.min_y);
      }
      if (row == grid.ny - 1) {
        EXPECT_EQ(cell.max_y, kBounds.max_y);
      }
      // Shared edges are bit-identical between neighbours.
      if (col > 0) {
        EXPECT_EQ(cell.min_x, ShardRegionRect(kBounds, grid, i - 1).max_x);
      }
      if (row > 0) {
        EXPECT_EQ(cell.min_y,
                  ShardRegionRect(kBounds, grid, i - grid.nx).max_y);
      }
      // The cell's center maps back to the cell.
      EXPECT_EQ(OwningShard(kBounds, grid, cell.Center()), i);
    }
  }
}

TEST(ServeShardGridTest, OwningShardIsTotal) {
  const ShardGrid grid = MakeShardGrid(4);
  // Points outside the world rect still route into the grid.
  for (const Point& p : {Point{-50, -50}, Point{150, 150}, Point{-50, 150},
                         Point{50, 1e9}}) {
    const int shard = OwningShard(kBounds, grid, p);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
  }
  // A degenerate (zero-extent) world maps everything to shard 0's row/col.
  const Rect degenerate(10, 10, 10, 10);
  EXPECT_EQ(OwningShard(degenerate, grid, Point{0, 0}), 0);
  EXPECT_EQ(OwningShard(degenerate, grid, Point{99, 99}), 0);
  // Interior points land in the expected quadrant (2x2 over [0,100)^2).
  EXPECT_EQ(OwningShard(kBounds, grid, Point{25, 25}), 0);
  EXPECT_EQ(OwningShard(kBounds, grid, Point{75, 25}), 1);
  EXPECT_EQ(OwningShard(kBounds, grid, Point{25, 75}), 2);
  EXPECT_EQ(OwningShard(kBounds, grid, Point{75, 75}), 3);
}

TEST(ServeShardRoutingTest, AffinityShardIsDeterministicAndInRange) {
  ServeRequest request;
  request.dataset = "ds";
  request.layers = {0, 2};
  request.kind = ServeQueryKind::kMolq;
  request.topk = 3;
  for (const int shards : {1, 2, 4, 7}) {
    const int first = AffinityShard(request, shards);
    EXPECT_GE(first, 0);
    EXPECT_LT(first, shards);
    EXPECT_EQ(AffinityShard(request, shards), first);  // stable
  }
  // Different request shapes stay in range, and at least one hashes to a
  // different shard (the hash is not constant).
  bool any_differs = false;
  for (size_t k = 1; k <= 16; ++k) {
    ServeRequest other = request;
    other.topk = k;
    const int shard = AffinityShard(other, 7);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 7);
    any_differs = any_differs || shard != AffinityShard(request, 7);
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// Metrics merging

void Populate(ServeMetrics* m, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    const double seconds = rng.Uniform(1e-5, 2.0);
    const int outcome = static_cast<int>(rng.NextBelow(4));
    const ServeStatus status =
        outcome == 0 ? ServeStatus::kOk
        : outcome == 1 ? ServeStatus::kDeadlineExceeded
        : outcome == 2 ? ServeStatus::kOverloaded
                       : ServeStatus::kInvalidRequest;
    m->RecordRequest(status, seconds, i % 3 == 0);
    if (status == ServeStatus::kOk) {
      m->RecordPhases(seconds * 0.7, seconds * 0.3);
    }
    if (i % 7 == 0) m->RecordMutation();
  }
}

TEST(ServeShardMetricsTest, MergeIsAssociativeAndCommutative) {
  ServeMetrics a, b, c;
  Populate(&a, 11);
  Populate(&b, 22);
  Populate(&c, 33);
  const ArtifactCache::Stats cache;

  // (A ⊕ B) ⊕ C
  ServeMetrics left;
  left.MergeFrom(a);
  left.MergeFrom(b);
  left.MergeFrom(c);
  // A ⊕ (B ⊕ C)
  ServeMetrics bc;
  bc.MergeFrom(b);
  bc.MergeFrom(c);
  ServeMetrics right;
  right.MergeFrom(a);
  right.MergeFrom(bc);
  EXPECT_EQ(left.Json(cache), right.Json(cache));

  // C ⊕ B ⊕ A
  ServeMetrics reversed;
  reversed.MergeFrom(c);
  reversed.MergeFrom(b);
  reversed.MergeFrom(a);
  EXPECT_EQ(left.Json(cache), reversed.Json(cache));

  // Counters really sum (merging is not idempotent or lossy).
  EXPECT_EQ(left.requests(), a.requests() + b.requests() + c.requests());
  EXPECT_EQ(left.mutations(),
            a.mutations() + b.mutations() + c.mutations());
}

TEST(ServeShardMetricsTest, CacheStatsMerge) {
  ArtifactCache::Stats a;
  a.hits = 10;
  a.misses = 3;
  a.bytes = 1000;
  a.capacity = 4000;
  a.entries = 2;
  ArtifactCache::Stats b;
  b.hits = 5;
  b.misses = 7;
  b.evictions = 1;
  b.bytes = 500;
  b.capacity = 4000;
  b.entries = 1;
  a.MergeFrom(b);
  EXPECT_EQ(a.hits, 15u);
  EXPECT_EQ(a.misses, 10u);
  EXPECT_EQ(a.evictions, 1u);
  EXPECT_EQ(a.bytes, 1500u);
  EXPECT_EQ(a.capacity, 8000u);  // budgets total across shards
  EXPECT_EQ(a.entries, 3u);
}

// ---------------------------------------------------------------------------
// The determinism sweep

EngineRequest Envelope(const std::string& id) {
  EngineRequest request;
  request.id = id;
  request.dataset = "ds";
  return request;
}

/// The deterministic transcript entry for one response: status, snapshot
/// version, and — for queries — the timing-free answer JSON resolved
/// through the pinned snapshot. Mutation responses contribute their
/// version and dataset-level patch size, but not the cache-dependent
/// patched/dropped artifact counts: those reflect which artifacts the
/// OWNING shard happened to have cached, which legitimately varies with
/// the shard count (queries routed elsewhere never warmed it).
std::string TranscriptEntry(const ServeResponse& resp) {
  std::string entry = ServeStatusName(resp.status);
  entry += "/v" + std::to_string(resp.version);
  if (resp.status != ServeStatus::kOk) return entry;
  if (resp.is_mutation) {
    return entry + "/cells" + std::to_string(resp.mutation.recomputed_cells);
  }
  EXPECT_NE(resp.snapshot, nullptr);
  return entry + "/" + ResponseJson(resp.snapshot->query, resp, false);
}

/// Runs the five query verbs plus an INSERT/DELETE interleaving through
/// the typed API and returns the transcript.
std::vector<std::string> RunScript(Engine* engine) {
  std::vector<std::string> transcript;
  const auto run = [&](EngineRequest request) {
    transcript.push_back(TranscriptEntry(engine->Handle(request)));
  };

  EngineRequest solve = Envelope("solve");
  solve.layers = {0, 1};
  solve.op = SolveSpec{MolqAlgorithm::kRrb, 2};
  run(solve);

  EngineRequest skyline = Envelope("skyline");
  skyline.op = SkylineSpec{MolqAlgorithm::kRrb};
  run(skyline);

  EngineRequest diverse = Envelope("diverse");
  diverse.op = DiverseSpec{MolqAlgorithm::kRrb, 2, 8.0};
  run(diverse);

  EngineRequest constrain = Envelope("constrain");
  constrain.layers = {0, 2};
  ConstrainSpec spec;
  spec.constraint.boundary =
      Polygon({{20, 20}, {80, 20}, {80, 80}, {20, 80}});
  constrain.op = spec;
  run(constrain);

  EngineRequest whatif = Envelope("whatif");
  whatif.layers = {0, 1};
  whatif.op = WhatIfSpec{MolqAlgorithm::kRrb, 2, {{1.0, 1.0}, {1.5, 0.5}}};
  run(whatif);

  // Mutations interleave: insert, re-query, delete, re-query. Every verb
  // must answer identically at every version, whichever shard owns the
  // mutated point.
  SiteMutation insert;
  insert.kind = MutationKind::kInsert;
  insert.layer = 0;
  insert.location = Point{33.25, 61.75};
  EngineRequest ins = Envelope("ins");
  ins.op = insert;
  run(ins);

  run(solve);
  run(skyline);

  SiteMutation erase = insert;
  erase.kind = MutationKind::kDelete;
  EngineRequest del = Envelope("del");
  del.op = erase;
  run(del);

  run(skyline);
  run(whatif);
  return transcript;
}

ShardedEngineOptions TestOptions(int shards) {
  ShardedEngineOptions options;
  options.shards = shards;
  options.engine.workers = 2;
  options.engine.exec.weighted_grid_resolution = 64;
  return options;
}

TEST(ServeShardDeterminismTest, AnswersBitIdenticalAcrossShardCounts) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const MolqQuery query = TestQuery({10, 8, 7}, seed);
    std::vector<std::string> baseline;
    for (const int shards : {1, 2, 4, 7}) {
      ShardedEngine engine(TestOptions(shards));
      engine.RegisterDataset("ds", query, kBounds);
      const std::vector<std::string> transcript = RunScript(&engine);
      if (shards == 1) {
        baseline = transcript;
        continue;
      }
      ASSERT_EQ(transcript.size(), baseline.size());
      for (size_t i = 0; i < transcript.size(); ++i) {
        EXPECT_EQ(transcript[i], baseline[i])
            << "seed " << seed << ", shards " << shards << ", step " << i;
      }
    }
  }
}

TEST(ServeShardDeterminismTest, SingleShardMatchesUnshardedEngine) {
  const MolqQuery query = TestQuery({10, 8, 7}, 99);
  QueryEngineOptions options = TestOptions(1).engine;
  QueryEngine unsharded(options);
  unsharded.RegisterDataset("ds", query, kBounds);
  ShardedEngine sharded(TestOptions(1));
  sharded.RegisterDataset("ds", query, kBounds);
  EXPECT_EQ(RunScript(&unsharded), RunScript(&sharded));
  // shards == 1 forwards the single replica's STATS body verbatim: no
  // sharding fields appended.
  EXPECT_EQ(sharded.MetricsJson().find("per_shard"), std::string::npos);
  EXPECT_EQ(sharded.MetricsJson().find("\"shards\""), std::string::npos);
}

TEST(ServeShardDeterminismTest, RoutingRectHintDoesNotChangeAnswers) {
  const MolqQuery query = TestQuery({10, 8}, 7);
  ShardedEngine engine(TestOptions(4));
  engine.RegisterDataset("ds", query, kBounds);

  EngineRequest plain = Envelope("q");
  plain.layers = {0, 1};
  plain.op = SolveSpec{MolqAlgorithm::kRrb, 2};
  const ServeResponse base = engine.Handle(plain);
  ASSERT_EQ(base.status, ServeStatus::kOk);

  // The same query routed to each quadrant answers identically.
  for (const Point& center :
       {Point{25, 25}, Point{75, 25}, Point{25, 75}, Point{75, 75}}) {
    EngineRequest hinted = plain;
    hinted.routing_rect =
        Rect(center.x - 5, center.y - 5, center.x + 5, center.y + 5);
    const ServeResponse routed = engine.Handle(hinted);
    EXPECT_EQ(TranscriptEntry(routed), TranscriptEntry(base));
  }
}

TEST(ServeShardDeterminismTest, MergedStatsExposePerShardBreakdown) {
  const MolqQuery query = TestQuery({8, 7}, 5);
  ShardedEngine engine(TestOptions(2));
  engine.RegisterDataset("ds", query, kBounds);
  EngineRequest solve = Envelope("q");
  solve.op = SolveSpec{MolqAlgorithm::kRrb, 1};
  ASSERT_EQ(engine.Handle(solve).status, ServeStatus::kOk);
  const std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"shards\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_shard\":["), std::string::npos) << json;
}

TEST(ServeShardDeterminismTest, UnknownDatasetMatchesUnshardedStatus) {
  // The unsharded engine answers queries on an unknown dataset with
  // kInvalidRequest and mutations with kNotFound; the sharded router must
  // report the same codes (it forwards to shard 0 rather than failing in
  // the routing layer).
  ShardedEngine engine(TestOptions(4));
  EngineRequest solve = Envelope("q");
  solve.dataset = "missing";
  solve.op = SolveSpec{MolqAlgorithm::kRrb, 1};
  EXPECT_EQ(engine.Handle(solve).status, ServeStatus::kInvalidRequest);
  EngineRequest skyline = Envelope("s");
  skyline.dataset = "missing";
  skyline.op = SkylineSpec{MolqAlgorithm::kRrb};
  EXPECT_EQ(engine.Handle(skyline).status, ServeStatus::kInvalidRequest);
  SiteMutation insert;
  insert.layer = 0;
  insert.location = Point{1, 1};
  EngineRequest ins = Envelope("i");
  ins.dataset = "missing";
  ins.op = insert;
  EXPECT_EQ(engine.Handle(ins).status, ServeStatus::kNotFound);
}

// ---------------------------------------------------------------------------
// Request round-trip through the wire format

TEST(ServeShardProtocolTest, FormatRequestLineRoundTrips) {
  EngineRequest request = Envelope("rt");
  request.layers = {0, 2};
  request.epsilon = 1e-4;
  request.exec.threads = 3;
  request.use_cache = false;
  request.deadline_ms = 250.0;
  request.routing_rect = Rect(1.25, 2.5, 30.75, 40.125);
  request.op = DiverseSpec{MolqAlgorithm::kMbrb, 5, 12.5};

  ServeVerb verb = ServeVerb::kPing;
  EngineRequest parsed;
  ASSERT_TRUE(
      ParseRequest(FormatRequestLine(request), &verb, &parsed).ok());
  EXPECT_EQ(verb, ServeVerb::kSolve);
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.dataset, request.dataset);
  EXPECT_EQ(parsed.layers, request.layers);
  EXPECT_EQ(parsed.epsilon, request.epsilon);
  EXPECT_EQ(parsed.exec.threads, request.exec.threads);
  EXPECT_EQ(parsed.use_cache, request.use_cache);
  EXPECT_EQ(parsed.deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed.routing_rect.min_x, request.routing_rect.min_x);
  EXPECT_EQ(parsed.routing_rect.max_y, request.routing_rect.max_y);
  const DiverseSpec& spec = std::get<DiverseSpec>(parsed.op);
  EXPECT_EQ(spec.algorithm, MolqAlgorithm::kMbrb);
  EXPECT_EQ(spec.topk, 5u);
  EXPECT_EQ(spec.min_distance, 12.5);

  // Mutations round-trip with full coordinate precision.
  SiteMutation mutation;
  mutation.kind = MutationKind::kDelete;
  mutation.layer = 2;
  mutation.location = Point{1.0 / 3.0, 2.0 / 7.0};
  EngineRequest mutate = Envelope("m");
  mutate.op = mutation;
  ASSERT_TRUE(
      ParseRequest(FormatRequestLine(mutate), &verb, &parsed).ok());
  const SiteMutation& back = std::get<SiteMutation>(parsed.op);
  EXPECT_EQ(back.kind, MutationKind::kDelete);
  EXPECT_EQ(back.layer, 2);
  EXPECT_EQ(back.location.x, mutation.location.x);  // bit-exact
  EXPECT_EQ(back.location.y, mutation.location.y);
}

}  // namespace
}  // namespace movd
