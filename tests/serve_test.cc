// Tests for the resident serving subsystem (src/serve, DESIGN.md §8):
// artifact cache semantics (LRU, byte budget, single-flight), serving
// metrics, the line protocol, and the QueryEngine itself — above all that
// served answers are bit-identical to the cold pipeline for every cache
// state, thread count and batching arrangement, and that a fired deadline
// never yields a partial answer.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/molq.h"
#include "model/movd_model.h"
#include "core/topk.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "storage/movd_file.h"
#include "util/rng.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

std::string TmpDir(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = info == nullptr ? std::string("unknown")
                                    : std::string(info->test_suite_name()) +
                                          "_" + info->name();
  return ::testing::TempDir() + "/" + tag + "_" + name;
}

// A small immutable artifact for cache tests; same seed → same bytes.
std::shared_ptr<const Movd> MakeArtifact(size_t sites, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < sites; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  const auto vd = VoronoiDiagram::Build(pts, kBounds);
  std::vector<int32_t> ids(vd.sites().size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  return std::make_shared<const Movd>(MovdFromVoronoi(vd, 0, ids));
}

MolqQuery TestQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = std::string("layer") += std::to_string(s);
    for (size_t i = 0; i < sizes[s]; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = rng.Uniform(0.1, 10.0);
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

// Exact (bitwise) answer comparison — the determinism contract is
// bit-identity, not approximate agreement.
void ExpectAnswersEqual(const std::vector<ServeAnswer>& a,
                        const std::vector<ServeAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].location.x, b[i].location.x);
    EXPECT_EQ(a[i].location.y, b[i].location.y);
    EXPECT_EQ(a[i].cost, b[i].cost);
    ASSERT_EQ(a[i].group.size(), b[i].group.size());
    for (size_t g = 0; g < a[i].group.size(); ++g) {
      EXPECT_EQ(a[i].group[g].set, b[i].group[g].set);
      EXPECT_EQ(a[i].group[g].object, b[i].group[g].object);
    }
  }
}

// ---------------------------------------------------------------------------
// ArtifactCache

TEST(ServeCacheTest, ArtifactBytesMatchesOnDiskSize) {
  const auto artifact = MakeArtifact(12, 11);
  size_t records = 0;
  for (const Ovr& ovr : artifact->ovrs) records += SerializedOvrSize(ovr);
  // Cache accounting == file bytes: a cache budget and a warm-start
  // snapshot size mean the same thing.
  EXPECT_EQ(ArtifactBytes(*artifact), records + 16);
}

TEST(ServeCacheTest, HitAvoidsBuilderAndCountsStats) {
  ArtifactCache cache(64 << 20);
  const auto artifact = MakeArtifact(10, 1);
  std::atomic<int> builds{0};
  const auto builder = [&] {
    ++builds;
    return artifact;
  };
  bool hit = true;
  EXPECT_EQ(cache.GetOrBuild("k", builder, &hit), artifact);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.GetOrBuild("k", builder, &hit), artifact);
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, ArtifactBytes(*artifact));
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsed) {
  const auto a = MakeArtifact(10, 1);
  const auto b = MakeArtifact(10, 2);
  const auto c = MakeArtifact(10, 3);
  const size_t each = ArtifactBytes(*a);
  // Room for two artifacts of this size, not three.
  ArtifactCache cache(2 * each + each / 2);
  cache.Insert("a", a);
  cache.Insert("b", b);
  // Touch "a" so "b" is the least recently used entry.
  bool hit = false;
  EXPECT_NE(cache.GetOrBuild("a", [] { return nullptr; }, &hit), nullptr);
  EXPECT_TRUE(hit);
  cache.Insert("c", c);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, stats.capacity);
}

TEST(ServeCacheTest, OversizeArtifactIsNotCached) {
  const auto artifact = MakeArtifact(10, 1);
  ArtifactCache cache(ArtifactBytes(*artifact) - 1);
  cache.Insert("big", artifact);
  EXPECT_EQ(cache.Lookup("big"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.oversize, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ServeCacheTest, CapacityZeroAlwaysBuilds) {
  ArtifactCache cache(0);
  const auto artifact = MakeArtifact(10, 1);
  std::atomic<int> builds{0};
  const auto builder = [&] {
    ++builds;
    return artifact;
  };
  bool hit = true;
  EXPECT_EQ(cache.GetOrBuild("k", builder, &hit), artifact);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.GetOrBuild("k", builder, &hit), artifact);
  EXPECT_FALSE(hit);
  EXPECT_EQ(builds.load(), 2);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCacheTest, SingleFlightBuildsOnceUnderContention) {
  ArtifactCache cache(64 << 20);
  const auto artifact = MakeArtifact(10, 1);
  std::atomic<int> builds{0};
  const auto builder = [&]() -> std::shared_ptr<const Movd> {
    ++builds;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return artifact;
  };
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Movd>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { got[t] = cache.GetOrBuild("k", builder); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& g : got) EXPECT_EQ(g, artifact);
}

TEST(ServeCacheTest, NullBuilderResultCachesNothing) {
  ArtifactCache cache(64 << 20);
  EXPECT_EQ(cache.GetOrBuild(
                "k", []() -> std::shared_ptr<const Movd> { return nullptr; }),
            nullptr);
  EXPECT_EQ(cache.stats().inserts, 0u);
  // The key is not poisoned: a later successful build caches normally.
  const auto artifact = MakeArtifact(10, 1);
  EXPECT_EQ(cache.GetOrBuild("k", [&] { return artifact; }), artifact);
  EXPECT_EQ(cache.Lookup("k"), artifact);
}

TEST(ServeCacheTest, SnapshotIsMostRecentlyUsedFirst) {
  ArtifactCache cache(64 << 20);
  cache.Insert("a", MakeArtifact(8, 1));
  cache.Insert("b", MakeArtifact(8, 2));
  cache.Insert("c", MakeArtifact(8, 3));
  bool hit = false;
  cache.GetOrBuild("a", [] { return nullptr; }, &hit);
  ASSERT_TRUE(hit);
  const auto snapshot = cache.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "a");
  EXPECT_EQ(snapshot[1].first, "c");
  EXPECT_EQ(snapshot[2].first, "b");
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ServeMetricsTest, HistogramResolvesPercentilesToBucketBounds) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.PercentileSeconds(50), 0.0);
  for (int i = 0; i < 10; ++i) h.Record(3e-6);   // bucket [2us, 4us)
  for (int i = 0; i < 3; ++i) h.Record(1000e-6); // bucket [512us, 1024us)
  EXPECT_EQ(h.Count(), 13u);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(50), 4e-6);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(99), 1024e-6);
}

TEST(ServeMetricsTest, CountersAndJson) {
  ServeMetrics metrics;
  metrics.RecordRequest(ServeStatus::kOk, 0.001, /*cache_hit=*/true);
  metrics.RecordRequest(ServeStatus::kOk, 0.002, /*cache_hit=*/false);
  metrics.RecordRequest(ServeStatus::kDeadlineExceeded, 0.005, false);
  metrics.RecordRequest(ServeStatus::kInvalidRequest, 0.0001, false);
  EXPECT_EQ(metrics.requests(), 4u);
  EXPECT_EQ(metrics.ok(), 2u);
  EXPECT_EQ(metrics.deadline_exceeded(), 1u);
  EXPECT_EQ(metrics.invalid(), 1u);
  EXPECT_EQ(metrics.internal_errors(), 0u);
  EXPECT_EQ(metrics.overlay_hits(), 1u);
  EXPECT_EQ(metrics.latency().Count(), 4u);

  const std::string json = metrics.Json(ArtifactCache(1 << 20).stats());
  EXPECT_NE(json.find("\"requests\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":2"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"overlay_cache_hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_capacity\":1048576"), std::string::npos);
  EXPECT_NE(json.find("\"latency_buckets\":["), std::string::npos);
}

TEST(ServeMetricsTest, StatusNames) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOk), "OK");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kInvalidRequest),
               "INVALID_REQUEST");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kInternalError),
               "INTERNAL_ERROR");
}

// ---------------------------------------------------------------------------
// Line protocol

TEST(ServeProtocolTest, ParsesFullSolveLine) {
  ServeVerb verb;
  ServeRequest request;
  const Status parsed = ParseRequestLine(
      "SOLVE id=q7 dataset=city layers=2,0 algo=mbrb k=3 epsilon=0.01 "
      "deadline_ms=250 threads=4 cache=0",
      &verb, &request);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();
  EXPECT_EQ(verb, ServeVerb::kSolve);
  EXPECT_EQ(request.id, "q7");
  EXPECT_EQ(request.dataset, "city");
  ASSERT_EQ(request.layers.size(), 2u);
  EXPECT_EQ(request.layers[0], 2);
  EXPECT_EQ(request.layers[1], 0);
  EXPECT_EQ(request.algorithm, MolqAlgorithm::kMbrb);
  EXPECT_EQ(request.topk, 3u);
  EXPECT_DOUBLE_EQ(request.epsilon, 0.01);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
  EXPECT_EQ(request.exec.threads, 4);
  EXPECT_FALSE(request.use_cache);
}

TEST(ServeProtocolTest, SolveDefaultsAndRequiredDataset) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(ParseRequestLine("SOLVE dataset=d", &verb, &request).ok());
  EXPECT_EQ(request.id, "-");
  EXPECT_TRUE(request.layers.empty());
  EXPECT_EQ(request.algorithm, MolqAlgorithm::kRrb);
  EXPECT_EQ(request.topk, 1u);
  EXPECT_TRUE(request.use_cache);
  const Status missing = ParseRequestLine("SOLVE id=x k=2", &verb, &request);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kInvalidRequest);
  EXPECT_NE(missing.message().find("dataset"), std::string::npos);
}

TEST(ServeProtocolTest, RejectsUnknownAndMalformedArguments) {
  ServeVerb verb;
  ServeRequest request;
  // A misspelled key must fail loudly, not fall back to a default.
  const Status misspelled =
      ParseRequestLine("SOLVE dataset=d epsilonn=0.1", &verb, &request);
  EXPECT_FALSE(misspelled.ok());
  EXPECT_NE(misspelled.message().find("epsilonn"), std::string::npos);
  EXPECT_FALSE(ParseRequestLine("SOLVE dataset=d k=0", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d epsilon=0", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d layers=1,x", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d algo=fast", &verb, &request).ok());
  EXPECT_FALSE(
      ParseRequestLine("SOLVE dataset=d cache=yes", &verb, &request).ok());
  EXPECT_FALSE(ParseRequestLine("EXPLODE now", &verb, &request).ok());
  EXPECT_FALSE(ParseRequestLine("", &verb, &request).ok());
  EXPECT_FALSE(ParseRequestLine("PING extra", &verb, &request).ok());
}

TEST(ServeProtocolTest, VerbsAreCaseInsensitive) {
  ServeVerb verb;
  ServeRequest request;
  ASSERT_TRUE(ParseRequestLine("ping", &verb, &request).ok());
  EXPECT_EQ(verb, ServeVerb::kPing);
  ASSERT_TRUE(ParseRequestLine("Stats", &verb, &request).ok());
  EXPECT_EQ(verb, ServeVerb::kStats);
  ASSERT_TRUE(ParseRequestLine("quit", &verb, &request).ok());
  EXPECT_EQ(verb, ServeVerb::kQuit);
  ASSERT_TRUE(ParseRequestLine("shutdown", &verb, &request).ok());
  EXPECT_EQ(verb, ServeVerb::kShutdown);
  ASSERT_TRUE(ParseRequestLine("solve dataset=d", &verb, &request).ok());
  EXPECT_EQ(verb, ServeVerb::kSolve);
}

TEST(ServeProtocolTest, FormatsOkAndErrLines) {
  MolqQuery query = TestQuery({2, 2}, 5);
  ServeResponse resp;
  resp.id = "q1";
  ServeAnswer answer;
  answer.location = {1.5, 2.5};
  answer.cost = 10.0;
  answer.group.push_back({0, 1});
  answer.group.push_back({1, 0});
  resp.answers.push_back(answer);
  resp.seconds = 0.25;
  const std::string ok = FormatResponseLine(&query, resp);
  EXPECT_EQ(ok.rfind("OK q1 {\"answers\": [", 0), 0u) << ok;
  EXPECT_NE(ok.find("\"location\": [1.500000, 2.500000]"), std::string::npos);
  EXPECT_NE(ok.find("\"cost\": 10.000000"), std::string::npos);
  EXPECT_NE(ok.find("\"set\": \"layer0\""), std::string::npos);
  EXPECT_NE(ok.find("\"cache_hit\": false"), std::string::npos);
  EXPECT_NE(ok.find("\"seconds\": 0.250000"), std::string::npos);

  ServeResponse err;
  err.id = "q2";
  err.status = ServeStatus::kInvalidRequest;
  err.error = "unknown dataset 'x'";
  EXPECT_EQ(FormatResponseLine(nullptr, err),
            "ERR q2 INVALID_REQUEST unknown dataset 'x'");
}

// ---------------------------------------------------------------------------
// QueryEngine

TEST(ServeEngineTest, ServedAnswerIsBitIdenticalToColdPipeline) {
  const MolqQuery query = TestQuery({30, 25, 20}, 42);
  const Rect world = kBounds;
  QueryEngine engine;
  engine.RegisterDataset("city", query, world);

  ServeRequest request;
  request.dataset = "city";
  request.epsilon = 1e-4;
  const ServeResponse cold = engine.Solve(request);
  ASSERT_EQ(cold.status, ServeStatus::kOk);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_EQ(cold.answers.size(), 1u);

  // Reference: the unbatched, uncached pipeline.
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kRrb;
  opts.epsilon = 1e-4;
  const MolqResult direct = SolveMolq(query, world, opts);
  EXPECT_EQ(cold.answers[0].location.x, direct.location.x);
  EXPECT_EQ(cold.answers[0].location.y, direct.location.y);
  EXPECT_EQ(cold.answers[0].cost, direct.cost);

  // Second request is served from cache and stays bit-identical.
  const ServeResponse warm = engine.Solve(request);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);
  ExpectAnswersEqual(cold.answers, warm.answers);
  EXPECT_EQ(engine.metrics().ok(), 2u);
  EXPECT_EQ(engine.metrics().overlay_hits(), 1u);
}

TEST(ServeEngineTest, AnswersIdenticalAcrossThreadCountsAndCacheState) {
  const MolqQuery query = TestQuery({25, 25}, 7);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  std::vector<ServeAnswer> reference;
  for (const int threads : {1, 2, 4}) {
    for (const bool use_cache : {true, false}) {
      request.exec.threads = threads;
      request.use_cache = use_cache;
      const ServeResponse resp = engine.Solve(request);
      ASSERT_EQ(resp.status, ServeStatus::kOk);
      if (reference.empty()) {
        reference = resp.answers;
      } else {
        ExpectAnswersEqual(reference, resp.answers);
      }
    }
  }
}

TEST(ServeEngineTest, LayerSubsetMatchesDirectSubQuery) {
  const MolqQuery query = TestQuery({20, 20, 20}, 13);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.layers = {2, 0};  // order and duplicates are normalized
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk);
  ASSERT_EQ(resp.answers.size(), 1u);

  MolqQuery sub;
  sub.sets = {query.sets[0], query.sets[2]};
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kRrb;
  const MolqResult direct = SolveMolq(sub, kBounds, opts);
  EXPECT_EQ(resp.answers[0].location.x, direct.location.x);
  EXPECT_EQ(resp.answers[0].location.y, direct.location.y);
  EXPECT_EQ(resp.answers[0].cost, direct.cost);
  // Group refs use DATASET layer indices (0 and 2), not sub-query ones.
  for (const PoiRef& poi : resp.answers[0].group) {
    EXPECT_TRUE(poi.set == 0 || poi.set == 2) << poi.set;
  }
}

TEST(ServeEngineTest, SscMatchesMovdAlgorithmsAndRemapsGroups) {
  const MolqQuery query = TestQuery({12, 12, 12}, 19);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.layers = {1, 2};
  request.algorithm = MolqAlgorithm::kSsc;
  const ServeResponse ssc = engine.Solve(request);
  ASSERT_EQ(ssc.status, ServeStatus::kOk);
  ASSERT_EQ(ssc.answers.size(), 1u);
  for (const PoiRef& poi : ssc.answers[0].group) {
    EXPECT_TRUE(poi.set == 1 || poi.set == 2) << poi.set;
  }
  request.algorithm = MolqAlgorithm::kRrb;
  const ServeResponse rrb = engine.Solve(request);
  ASSERT_EQ(rrb.status, ServeStatus::kOk);
  // SSC is exact; RRB is epsilon-approximate. Same combination, near cost.
  ASSERT_EQ(ssc.answers[0].group.size(), rrb.answers[0].group.size());
  EXPECT_NEAR(ssc.answers[0].cost, rrb.answers[0].cost,
              1e-2 * ssc.answers[0].cost + 1e-6);

  // SSC serves k=1 only.
  request.algorithm = MolqAlgorithm::kSsc;
  request.topk = 2;
  EXPECT_EQ(engine.Solve(request).status, ServeStatus::kInvalidRequest);
}

TEST(ServeEngineTest, TopKMatchesDirectRanking) {
  const MolqQuery query = TestQuery({20, 20}, 23);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.topk = 3;
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk);
  ASSERT_EQ(resp.answers.size(), 3u);
  EXPECT_LE(resp.answers[0].cost, resp.answers[1].cost);
  EXPECT_LE(resp.answers[1].cost, resp.answers[2].cost);

  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kRrb;
  const auto direct = SolveMolqTopK(query, kBounds, 3, opts);
  ASSERT_EQ(direct.ranked.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resp.answers[i].location.x, direct.ranked[i].location.x);
    EXPECT_EQ(resp.answers[i].location.y, direct.ranked[i].location.y);
    EXPECT_EQ(resp.answers[i].cost, direct.ranked[i].cost);
  }
}

TEST(ServeEngineTest, InvalidRequestsAreStructuredErrors) {
  QueryEngine engine;
  engine.RegisterDataset("d", TestQuery({5, 5}, 3), kBounds);
  ServeRequest request;
  request.dataset = "nope";
  ServeResponse resp = engine.Solve(request);
  EXPECT_EQ(resp.status, ServeStatus::kInvalidRequest);
  EXPECT_NE(resp.error.find("unknown dataset"), std::string::npos);
  EXPECT_TRUE(resp.answers.empty());

  request.dataset = "d";
  request.layers = {0, 5};
  resp = engine.Solve(request);
  EXPECT_EQ(resp.status, ServeStatus::kInvalidRequest);
  EXPECT_NE(resp.error.find("out of range"), std::string::npos);

  request.layers.clear();
  request.topk = 0;
  EXPECT_EQ(engine.Solve(request).status, ServeStatus::kInvalidRequest);
  request.topk = 1;
  request.epsilon = 0.0;
  EXPECT_EQ(engine.Solve(request).status, ServeStatus::kInvalidRequest);
  EXPECT_EQ(engine.metrics().invalid(), 4u);
  EXPECT_EQ(engine.metrics().ok(), 0u);
}

TEST(ServeEngineTest, DeadlineExceededReturnsNoPartialAnswer) {
  // Big enough that the pipeline cannot finish within a microsecond.
  const MolqQuery query = TestQuery({80, 80, 80}, 31);
  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  request.epsilon = 1e-4;
  request.deadline_ms = 0.001;
  const ServeResponse timed_out = engine.Solve(request);
  EXPECT_EQ(timed_out.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(timed_out.answers.empty());
  EXPECT_FALSE(timed_out.error.empty());
  EXPECT_EQ(engine.metrics().deadline_exceeded(), 1u);

  // The aborted build poisoned nothing: the same request without a
  // deadline matches the cold pipeline exactly.
  request.deadline_ms = 0.0;
  const ServeResponse full = engine.Solve(request);
  ASSERT_EQ(full.status, ServeStatus::kOk);
  MolqOptions opts;
  opts.algorithm = MolqAlgorithm::kRrb;
  opts.epsilon = 1e-4;
  const MolqResult direct = SolveMolq(query, kBounds, opts);
  EXPECT_EQ(full.answers[0].location.x, direct.location.x);
  EXPECT_EQ(full.answers[0].cost, direct.cost);
}

TEST(ServeEngineTest, ConcurrentBatchedRequestsStayDeterministic) {
  const MolqQuery query = TestQuery({20, 20, 15}, 47);
  QueryEngineOptions options;
  options.workers = 4;
  QueryEngine engine(options);
  engine.RegisterDataset("d", query, kBounds);

  // Reference answers for three distinct request shapes, solved serially.
  std::vector<ServeRequest> shapes(3);
  for (auto& s : shapes) s.dataset = "d";
  shapes[1].layers = {0, 1};
  shapes[2].algorithm = MolqAlgorithm::kMbrb;
  std::vector<ServeResponse> reference;
  for (const auto& s : shapes) {
    reference.push_back(engine.Solve(s));
    ASSERT_EQ(reference.back().status, ServeStatus::kOk);
  }

  // A burst of interleaved duplicates through the worker pool.
  std::vector<std::future<ServeResponse>> futures;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t s = 0; s < shapes.size(); ++s) {
      ServeRequest request = shapes[s];
      request.id = std::to_string(round) + ":" + std::to_string(s);
      futures.push_back(engine.SubmitAsync(std::move(request)));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const ServeResponse resp = futures[i].get();
    ASSERT_EQ(resp.status, ServeStatus::kOk) << resp.error;
    ExpectAnswersEqual(reference[i % shapes.size()].answers, resp.answers);
  }
  EXPECT_EQ(engine.metrics().ok(),
            static_cast<uint64_t>(kRounds + 1) * shapes.size());
}

TEST(ServeEngineTest, CacheDisabledEngineStaysCorrect) {
  const MolqQuery query = TestQuery({15, 15}, 53);
  QueryEngineOptions options;
  options.cache_bytes = 0;
  QueryEngine engine(options);
  engine.RegisterDataset("d", query, kBounds);
  ServeRequest request;
  request.dataset = "d";
  const ServeResponse first = engine.Solve(request);
  const ServeResponse second = engine.Solve(request);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  ASSERT_EQ(second.status, ServeStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  ExpectAnswersEqual(first.answers, second.answers);
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(ServeEngineTest, WarmStartRoundTripServesIdenticalAnswersFromCache) {
  const MolqQuery query = TestQuery({20, 20}, 61);
  const std::string dir = TmpDir("warm");
  ServeRequest request;
  request.dataset = "d";
  ServeResponse cold;
  {
    QueryEngine engine;
    engine.RegisterDataset("d", query, kBounds);
    cold = engine.Solve(request);
    ASSERT_EQ(cold.status, ServeStatus::kOk);
    const Status saved = engine.SaveCache(dir);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
  }
  QueryEngine warm_engine;
  warm_engine.RegisterDataset("d", query, kBounds);
  const auto load = warm_engine.LoadCache(dir);
  EXPECT_TRUE(load.status.ok()) << load.status.ToString();
  EXPECT_GE(load.loaded, 3u);  // two basics + one overlay
  EXPECT_EQ(load.failed, 0u);
  const ServeResponse warm = warm_engine.Solve(request);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  // The very first request after a warm start hits the persisted overlay.
  EXPECT_TRUE(warm.cache_hit);
  ExpectAnswersEqual(cold.answers, warm.answers);
}

TEST(ServeEngineTest, WarmStartSkipsCorruptArtifacts) {
  const MolqQuery query = TestQuery({15, 15}, 67);
  const std::string dir = TmpDir("corrupt");
  ServeRequest request;
  request.dataset = "d";
  ServeResponse cold;
  {
    QueryEngine engine;
    engine.RegisterDataset("d", query, kBounds);
    cold = engine.Solve(request);
    ASSERT_EQ(cold.status, ServeStatus::kOk);
    const Status saved = engine.SaveCache(dir);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
  }
  // Truncate one artifact mid-record: it must be skipped, not served.
  const std::string victim = dir + "/art_0.movd";
  std::FILE* f = std::fopen(victim.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(victim.c_str(), size / 2), 0);

  QueryEngine engine;
  engine.RegisterDataset("d", query, kBounds);
  const auto load = engine.LoadCache(dir);
  EXPECT_TRUE(load.status.ok()) << load.status.ToString();
  EXPECT_EQ(load.failed, 1u);
  EXPECT_GE(load.loaded, 2u);
  // The engine still answers correctly, rebuilding what was damaged.
  const ServeResponse resp = engine.Solve(request);
  ASSERT_EQ(resp.status, ServeStatus::kOk);
  ExpectAnswersEqual(cold.answers, resp.answers);
}

TEST(ServeEngineTest, LoadCacheReportsMissingDirectory) {
  QueryEngine engine;
  const auto load = engine.LoadCache(TmpDir("missing"));
  EXPECT_FALSE(load.status.ok());
  EXPECT_EQ(load.status.code(), StatusCode::kIoError);
  EXPECT_EQ(load.loaded, 0u);
}

}  // namespace
}  // namespace movd
