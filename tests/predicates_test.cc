#include <cmath>

#include <gtest/gtest.h>

#include "geom/expansion.h"
#include "geom/predicates.h"
#include "util/rng.h"

namespace movd {
namespace {

TEST(ExpansionTest, TwoSumIsExact) {
  double x, y;
  expansion::TwoSum(1.0, 1e-30, &x, &y);
  EXPECT_EQ(x, 1.0);
  EXPECT_EQ(y, 1e-30);  // the residual carries the lost low-order part
}

TEST(ExpansionTest, TwoProductCapturesRoundoff) {
  double x, y;
  // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60; the last term falls off the double.
  const double a = 1.0 + std::ldexp(1.0, -30);
  expansion::TwoProduct(a, a, &x, &y);
  EXPECT_EQ(x + y, x);  // y is strictly smaller than half an ulp of x...
  EXPECT_NE(y, 0.0);    // ...but the exact residual is preserved
}

TEST(ExpansionTest, SumOfExpansionsPreservesValue) {
  double e[2], f[2], h[4];
  expansion::TwoSum(1.0, 1e-20, &e[1], &e[0]);
  expansion::TwoSum(3.0, -1e-20, &f[1], &f[0]);
  const int n = expansion::FastExpansionSumZeroelim(2, e, 2, f, h);
  // Exact total is 4.0: the 1e-20 residuals cancel exactly.
  EXPECT_EQ(expansion::Estimate(n, h), 4.0);
}

TEST(Orient2DTest, BasicSigns) {
  EXPECT_GT(Orient2D({0, 0}, {1, 0}, {0, 1}), 0.0);  // left turn
  EXPECT_LT(Orient2D({0, 0}, {1, 0}, {0, -1}), 0.0);  // right turn
  EXPECT_EQ(Orient2D({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(Orient2DTest, ExactlyDetectsNearCollinearPerturbations) {
  // Points nearly on the line y = x, offset by one ulp: the fast filter
  // cannot decide; the exact path must.
  const double eps = std::ldexp(1.0, -52);
  const Point a{0.5, 0.5};
  const Point b{12.0, 12.0};
  const Point on{3.0, 3.0};
  const Point above{3.0, 3.0 * (1.0 + eps)};
  const Point below{3.0, 3.0 * (1.0 - eps)};
  EXPECT_EQ(Orient2D(a, b, on), 0.0);
  EXPECT_GT(Orient2D(a, b, above), 0.0);
  EXPECT_LT(Orient2D(a, b, below), 0.0);
}

TEST(Orient2DTest, AntiSymmetricUnderSwap) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Point c{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const double s1 = Orient2D(a, b, c);
    const double s2 = Orient2D(b, a, c);
    // Signs must be exactly opposite (or both zero).
    EXPECT_EQ(s1 > 0, s2 < 0);
    EXPECT_EQ(s1 == 0, s2 == 0);
  }
}

TEST(Orient2DTest, InvariantUnderCyclicRotation) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const Point b{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const Point c{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const double s1 = Orient2D(a, b, c);
    const double s2 = Orient2D(b, c, a);
    const double s3 = Orient2D(c, a, b);
    EXPECT_EQ(s1 > 0, s2 > 0);
    EXPECT_EQ(s2 > 0, s3 > 0);
    EXPECT_EQ(s1 == 0, s3 == 0);
  }
}

TEST(InCircleTest, BasicInsideOutside) {
  // CCW unit circle through (1,0), (0,1), (-1,0).
  const Point a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_GT(InCircle(a, b, c, {0, 0}), 0.0);        // center: inside
  EXPECT_LT(InCircle(a, b, c, {2, 0}), 0.0);        // far: outside
  EXPECT_EQ(InCircle(a, b, c, {0, -1}), 0.0);       // on the circle
}

TEST(InCircleTest, ExactOnCocircularGrid) {
  // All four corners of a square are cocircular: the determinant is a
  // zero that the fast filter cannot certify.
  const Point a{0, 0}, b{1, 0}, c{1, 1}, d{0, 1};
  EXPECT_EQ(InCircle(a, b, c, d), 0.0);
}

TEST(InCircleTest, SignFlipsWithOrientation) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point c{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point d{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (Orient2D(a, b, c) == 0.0) continue;
    const double s_ccw = InCircle(a, b, c, d);
    const double s_cw = InCircle(b, a, c, d);  // reversed orientation
    EXPECT_EQ(s_ccw > 0, s_cw < 0);
    EXPECT_EQ(s_ccw == 0, s_cw == 0);
  }
}

TEST(InCircleTest, AgreesWithDistanceComparison) {
  // For well-separated random inputs the naive circumcircle test and the
  // exact predicate must agree.
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point c{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Point d{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const double orientation = Orient2D(a, b, c);
    if (std::fabs(orientation) < 1e-3) continue;
    // Circumcenter via perpendicular bisector intersection.
    const double d_ab = a.Norm2() - b.Norm2();
    const double d_ac = a.Norm2() - c.Norm2();
    const double det = 2.0 * ((a.x - b.x) * (a.y - c.y) -
                              (a.x - c.x) * (a.y - b.y));
    const Point center{(d_ab * (a.y - c.y) - d_ac * (a.y - b.y)) / det,
                       ((a.x - b.x) * d_ac - (a.x - c.x) * d_ab) / det};
    const double r2 = Distance2(center, a);
    const double gap = Distance2(center, d) - r2;
    if (std::fabs(gap) < 1e-6 * r2) continue;  // too close to call naively
    const double pred =
        orientation > 0 ? InCircle(a, b, c, d) : InCircle(b, a, c, d);
    EXPECT_EQ(gap < 0, pred > 0) << "iteration " << i;
  }
}

// Parameterized sweep: scaling all coordinates by powers of two must not
// change any predicate sign (binary scaling is exact).
class PredicateScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(PredicateScaleTest, SignsScaleInvariant) {
  const double s = std::ldexp(1.0, GetParam());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Point a{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const Point b{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const Point c{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const Point d{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const auto scale = [s](const Point& p) { return Point{p.x * s, p.y * s}; };
    const double o1 = Orient2D(a, b, c);
    const double o2 = Orient2D(scale(a), scale(b), scale(c));
    EXPECT_EQ(o1 > 0, o2 > 0);
    EXPECT_EQ(o1 == 0, o2 == 0);
    const double i1 = InCircle(a, b, c, d);
    const double i2 = InCircle(scale(a), scale(b), scale(c), scale(d));
    EXPECT_EQ(i1 > 0, i2 > 0);
    EXPECT_EQ(i1 == 0, i2 == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, PredicateScaleTest,
                         ::testing::Values(-40, -20, -4, 0, 4, 20, 40));

}  // namespace
}  // namespace movd
