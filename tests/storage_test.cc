#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "model/movd_model.h"
#include "core/overlap.h"
#include "storage/external_sort.h"
#include "storage/io.h"
#include "storage/movd_file.h"
#include "storage/streaming_overlap.h"
#include "util/rng.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

// Temp path unique to the running test: parameterized instances of one
// test share file names, and ctest runs them as separate concurrent
// processes, so a bare TempDir() + name lets them clobber each other's
// files mid-test.
std::string Tmp(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = info == nullptr ? std::string("unknown")
                                    : std::string(info->test_suite_name()) +
                                          "_" + info->name();
  for (char& c : tag) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return ::testing::TempDir() + "/" + tag + "_" + name;
}

Movd RandomBasicMovd(size_t sites, int32_t set, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < sites; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  const auto vd = VoronoiDiagram::Build(pts, kBounds);
  std::vector<int32_t> ids(vd.sites().size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  return MovdFromVoronoi(vd, set, ids);
}

std::vector<std::string> Canonicalize(const Movd& movd) {
  std::vector<std::string> keys;
  for (const Ovr& ovr : movd.ovrs) {
    std::string k;
    for (const PoiRef& p : ovr.pois) {
      k += std::to_string(p.set) + ":" + std::to_string(p.object) + ";";
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "|%.9f,%.9f,%.9f,%.9f|%zu", ovr.mbr.min_x,
                  ovr.mbr.min_y, ovr.mbr.max_x, ovr.mbr.max_y,
                  ovr.region.VertexCount());
    k += buf;
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  const std::string path = Tmp("prim.bin");
  {
    BinaryWriter w(path);
    ASSERT_TRUE(w.ok());
    w.WriteU32(0xdeadbeef);
    w.WriteU64(0x0123456789abcdefULL);
    w.WriteVarint(0);
    w.WriteVarint(127);
    w.WriteVarint(128);
    w.WriteVarint(UINT64_MAX);
    w.WriteDouble(-0.1);
    w.WriteDouble(1e308);
    EXPECT_TRUE(w.Close());
  }
  BinaryReader r(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadVarint(), 0u);
  EXPECT_EQ(r.ReadVarint(), 127u);
  EXPECT_EQ(r.ReadVarint(), 128u);
  EXPECT_EQ(r.ReadVarint(), UINT64_MAX);
  EXPECT_EQ(r.ReadDouble(), -0.1);
  EXPECT_EQ(r.ReadDouble(), 1e308);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEof());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsNotOk) {
  BinaryReader r("/nonexistent/nope.bin");
  EXPECT_FALSE(r.ok());
  BinaryWriter w("/nonexistent/nope.bin");
  EXPECT_FALSE(w.ok());
}

TEST(MovdFileTest, RoundTripsMovd) {
  const Movd movd = RandomBasicMovd(25, 3, 201);
  const std::string path = Tmp("movd.bin");
  ASSERT_TRUE(SaveMovd(path, movd));
  const auto loaded = LoadMovd(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(Canonicalize(movd), Canonicalize(*loaded));
  // Regions themselves survive, not just MBRs.
  double area = 0.0;
  for (const Ovr& ovr : loaded->ovrs) area += ovr.region.Area();
  EXPECT_NEAR(area, kBounds.Area(), 1e-6 * kBounds.Area());
  std::remove(path.c_str());
}

TEST(MovdFileTest, EmptyMovd) {
  const std::string path = Tmp("empty.bin");
  ASSERT_TRUE(SaveMovd(path, Movd{}));
  const auto loaded = LoadMovd(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->ovrs.empty());
  std::remove(path.c_str());
}

TEST(MovdFileTest, RejectsGarbageHeader) {
  const std::string path = Tmp("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a movd file at all", f);
  std::fclose(f);
  EXPECT_FALSE(LoadMovd(path).has_value());
  std::remove(path.c_str());
}

TEST(MovdFileTest, TruncatedFileFailsGracefully) {
  const Movd movd = RandomBasicMovd(15, 0, 207);
  const std::string path = Tmp("trunc.bin");
  ASSERT_TRUE(SaveMovd(path, movd));
  // Chop the file in the middle of a record.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  MovdFileReader reader(path);
  EXPECT_TRUE(reader.ok());  // header intact
  size_t read = 0;
  while (reader.Next().has_value()) ++read;
  EXPECT_LT(read, movd.ovrs.size());
  EXPECT_FALSE(reader.ok());  // the failure is reported, not hidden
  EXPECT_FALSE(LoadMovd(path).has_value());
  std::remove(path.c_str());
}

TEST(MovdFileTest, SerializedSizeMatchesBytesWritten) {
  const Movd movd = RandomBasicMovd(10, 0, 202);
  size_t expected = 0;
  for (const Ovr& ovr : movd.ovrs) expected += SerializedOvrSize(ovr);
  const std::string path = Tmp("sized.bin");
  ASSERT_TRUE(SaveMovd(path, movd));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fclose(f);
  EXPECT_EQ(static_cast<size_t>(file_size), expected + 16);  // header = 16
  std::remove(path.c_str());
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

// The serving engine persists overlap artifacts (not just basic MOVDs)
// through SaveMovd/LoadMovd for warm starts; the overlay must survive a
// save → load → save cycle byte-identically, or warm-started answers
// could drift from cold ones.
TEST(MovdFileTest, OverlayArtifactRoundTripIsByteIdentical) {
  const Movd a = RandomBasicMovd(20, 0, 301);
  const Movd b = RandomBasicMovd(15, 1, 302);
  const Movd overlay = Overlap(a, b, BoundaryMode::kRealRegion);
  ASSERT_GT(overlay.ovrs.size(), a.ovrs.size());

  const std::string path1 = Tmp("overlay1.movd");
  const std::string path2 = Tmp("overlay2.movd");
  ASSERT_TRUE(SaveMovd(path1, overlay));
  const auto loaded = LoadMovd(path1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ovrs.size(), overlay.ovrs.size());
  EXPECT_EQ(Canonicalize(overlay), Canonicalize(*loaded));
  ASSERT_TRUE(SaveMovd(path2, *loaded));

  const std::string bytes1 = ReadFileBytes(path1);
  const std::string bytes2 = ReadFileBytes(path2);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes2);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

// A file with the right magic but a future format version must be
// rejected with a structured failure (nullopt / !ok()), never a crash or
// a garbage MOVD.
TEST(MovdFileTest, RejectsVersionMismatch) {
  const Movd movd = RandomBasicMovd(10, 0, 303);
  const std::string path = Tmp("version.movd");
  ASSERT_TRUE(SaveMovd(path, movd));
  // Header layout: u32 magic, u32 version, u64 count (little-endian).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
  const uint32_t bad_version = 999;
  ASSERT_EQ(std::fwrite(&bad_version, sizeof(bad_version), 1, f), 1u);
  std::fclose(f);

  MovdFileReader reader(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(LoadMovd(path).has_value());
  std::remove(path.c_str());
}

class ExternalSortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExternalSortTest, ProducesSweepOrderUnderBudget) {
  const Movd movd = RandomBasicMovd(120, 0, 203);
  const std::string in = Tmp("sortin.bin");
  const std::string out = Tmp("sortout.bin");
  ASSERT_TRUE(SaveMovd(in, movd));
  ExternalSortStats stats;
  ASSERT_TRUE(ExternalSortMovdFile(in, out, GetParam(), &stats));
  EXPECT_EQ(stats.records, movd.ovrs.size());
  const auto sorted = LoadMovd(out);
  ASSERT_TRUE(sorted.has_value());
  ASSERT_EQ(sorted->ovrs.size(), movd.ovrs.size());
  for (size_t i = 1; i < sorted->ovrs.size(); ++i) {
    EXPECT_GE(sorted->ovrs[i - 1].mbr.max_y, sorted->ovrs[i].mbr.max_y);
  }
  // Same multiset of OVRs.
  EXPECT_EQ(Canonicalize(movd), Canonicalize(*sorted));
  std::remove(in.c_str());
  std::remove(out.c_str());
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalSortTest,
                         ::testing::Values(1 << 10,   // many runs
                                           16 << 10,  // a few runs
                                           1 << 30)); // single run

TEST(ExternalSortTest, SpillsMultipleRunsUnderTinyBudget) {
  const Movd movd = RandomBasicMovd(200, 0, 204);
  const std::string in = Tmp("runs_in.bin");
  const std::string out = Tmp("runs_out.bin");
  ASSERT_TRUE(SaveMovd(in, movd));
  ExternalSortStats stats;
  ASSERT_TRUE(ExternalSortMovdFile(in, out, 2 << 10, &stats));
  EXPECT_GT(stats.runs, 4u);
  EXPECT_LE(stats.peak_bytes, (2u << 10) + 512u);  // budget + one record
  std::remove(in.c_str());
  std::remove(out.c_str());
}

class StreamingOverlapTest : public ::testing::TestWithParam<BoundaryMode> {};

TEST_P(StreamingOverlapTest, MatchesInMemoryOverlap) {
  const BoundaryMode mode = GetParam();
  const Movd a = RandomBasicMovd(40, 0, 205);
  const Movd b = RandomBasicMovd(55, 1, 206);
  const Movd expected = Overlap(a, b, mode);

  const std::string pa = Tmp("sa.bin"), pb = Tmp("sb.bin");
  const std::string sa = Tmp("sa_sorted.bin"), sb = Tmp("sb_sorted.bin");
  const std::string out = Tmp("stream_out.bin");
  ASSERT_TRUE(SaveMovd(pa, a));
  ASSERT_TRUE(SaveMovd(pb, b));
  ASSERT_TRUE(ExternalSortMovdFile(pa, sa, 4 << 10));
  ASSERT_TRUE(ExternalSortMovdFile(pb, sb, 4 << 10));

  StreamingOverlapStats stats;
  ASSERT_TRUE(StreamingOverlap(sa, sb, mode, out, &stats));
  const auto got = LoadMovd(out);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(Canonicalize(*got), Canonicalize(expected));
  EXPECT_EQ(stats.output_ovrs, expected.ovrs.size());
  // The sweep never holds everything at once (spatial data has bounded
  // sweep width).
  EXPECT_LT(stats.peak_active_ovrs, a.ovrs.size() + b.ovrs.size());
  for (const auto& p : {pa, pb, sa, sb, out}) std::remove(p.c_str());
}

INSTANTIATE_TEST_SUITE_P(Modes, StreamingOverlapTest,
                         ::testing::Values(BoundaryMode::kRealRegion,
                                           BoundaryMode::kMbr));

TEST(StreamingOverlapTest, RejectsUnsortedInput) {
  Movd unsorted;
  for (int i = 0; i < 3; ++i) {
    Ovr ovr;
    ovr.mbr = Rect(0, i * 10.0, 10, i * 10.0 + 5);  // ascending max_y
    ovr.region = Region::FromRect(ovr.mbr);
    ovr.pois = {{0, i}};
    unsorted.ovrs.push_back(ovr);
  }
  const std::string pa = Tmp("uns_a.bin"), pb = Tmp("uns_b.bin");
  const std::string out = Tmp("uns_out.bin");
  ASSERT_TRUE(SaveMovd(pa, unsorted));
  ASSERT_TRUE(SaveMovd(pb, unsorted));
  EXPECT_FALSE(StreamingOverlap(pa, pb, BoundaryMode::kMbr, out, nullptr));
  for (const auto& p : {pa, pb, out}) std::remove(p.c_str());
}

TEST(StreamingOverlapTest, PeakMemoryIsFractionOfInputOnTallData) {
  // Many horizontal strips: at any sweep position only a couple are active.
  Movd a, b;
  for (int i = 0; i < 200; ++i) {
    Ovr ovr;
    ovr.mbr = Rect(0, 200.0 - i, 100, 200.0 - i + 0.9);
    ovr.region = Region::FromRect(ovr.mbr);
    ovr.pois = {{0, i}};
    a.ovrs.push_back(ovr);
    ovr.pois = {{1, i}};
    b.ovrs.push_back(ovr);
  }
  const std::string pa = Tmp("tall_a.bin"), pb = Tmp("tall_b.bin");
  const std::string out = Tmp("tall_out.bin");
  ASSERT_TRUE(SaveMovd(pa, a));
  ASSERT_TRUE(SaveMovd(pb, b));
  StreamingOverlapStats stats;
  ASSERT_TRUE(StreamingOverlap(pa, pb, BoundaryMode::kMbr, out, &stats));
  EXPECT_LE(stats.peak_active_ovrs, 8u);
  EXPECT_EQ(stats.output_ovrs, 200u);  // strips pair only with their twin
  for (const auto& p : {pa, pb, out}) std::remove(p.c_str());
}

}  // namespace
}  // namespace movd
