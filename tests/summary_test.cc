// Tests for the shared statistics vocabulary (util/summary.h): exact
// quantiles on known inputs, IQR outlier rejection, and the latency
// histogram that serve/metrics.h re-exports.

#include "util/summary.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace movd {
namespace {

TEST(SortedQuantileTest, ExactValuesOnKnownInput) {
  // Type-7 (linear interpolation) quantiles of 1..5.
  const std::vector<double> sorted = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.75), 4.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.0), 5.0);
  // Interpolated between ranks: p95 of 1..5 sits at index 3.8.
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.95), 4.8);
}

TEST(SortedQuantileTest, EvenCountInterpolates) {
  const std::vector<double> sorted = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.5), 25.0);
}

TEST(SortedQuantileTest, SingleElement) {
  const std::vector<double> sorted = {7.0};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.0), 7.0);
}

TEST(SummaryTest, BasicStatisticsExact) {
  const Summary s = Summary::FromSamples({3, 1, 2, 5, 4},
                                         /*iqr_reject=*/false);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.outliers, 0u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  // Sample stddev (n-1) of 1..5 is sqrt(2.5).
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(2.5));
}

TEST(SummaryTest, EmptyInput) {
  const Summary s = Summary::FromSamples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, SingleSampleHasZeroStddev) {
  const Summary s = Summary::FromSamples({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, IqrRejectsFarOutlier) {
  // Nine tight samples plus one wild repetition (a GC pause, a page-fault
  // storm): the Tukey fence drops it and the summary reports clean stats.
  std::vector<double> samples = {10, 10.1, 10.2, 9.9, 9.8,
                                 10.05, 10.15, 9.95, 10.0, 100.0};
  const Summary s = Summary::FromSamples(samples);
  EXPECT_EQ(s.count, 9u);
  EXPECT_EQ(s.outliers, 1u);
  EXPECT_LE(s.max, 10.2);
  EXPECT_NEAR(s.median, 10.0, 0.1);
}

TEST(SummaryTest, IqrKeepsTightSamples) {
  const Summary s = Summary::FromSamples({1.0, 1.01, 0.99, 1.005});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(SummaryTest, NoRejectionBelowFourSamples) {
  // With n < 4 the quartiles are meaningless; everything is kept.
  const Summary s = Summary::FromSamples({1.0, 1.0, 50.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.outliers, 0u);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
}

TEST(SummaryTest, JsonContainsAllFields) {
  const std::string json = Summary::FromSamples({1, 2, 3, 4, 5}).Json();
  for (const char* field : {"\"count\"", "\"outliers\"", "\"min\"",
                            "\"median\"", "\"mean\"", "\"p95\"", "\"max\"",
                            "\"stddev\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(LatencyHistogramTest, CountAndPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(0.001);  // 1ms
  EXPECT_EQ(h.Count(), 1000u);
  // The bucketed percentile lands within the 1ms bucket's bounds (the
  // histogram is log-bucketed; exactness is not promised, the bound is).
  const double p50 = h.PercentileSeconds(50.0);
  EXPECT_GT(p50, 0.0001);
  EXPECT_LT(p50, 0.01);
}

TEST(LatencyHistogramTest, ToSummaryApproximates) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(0.002);
  const Summary s = h.ToSummary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_GT(s.median, 0.0);
}

}  // namespace
}  // namespace movd
