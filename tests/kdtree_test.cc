#include <algorithm>

#include <gtest/gtest.h>

#include "index/kdtree.h"
#include "index/rtree.h"
#include "util/rng.h"

namespace movd {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  return pts;
}

TEST(KdTreeTest, EmptyTree) {
  const KdTree tree = KdTree::Build({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Nearest({0, 0}, 5).empty());
  EXPECT_TRUE(tree.RangeQuery(Rect(0, 0, 10, 10)).empty());
}

TEST(KdTreeTest, SinglePoint) {
  const KdTree tree = KdTree::Build({{3, 4}});
  const auto nn = tree.Nearest({0, 0}, 2);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 0);
  EXPECT_DOUBLE_EQ(nn[0].distance2, 25.0);
}

class KdTreeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KdTreeSweepTest, KnnMatchesBruteForce) {
  const auto pts = RandomPoints(GetParam(), 501);
  const KdTree tree = KdTree::Build(pts);
  Rng rng(502);
  for (int q = 0; q < 20; ++q) {
    const Point query{rng.Uniform(-50, 1050), rng.Uniform(-50, 1050)};
    const size_t k = 1 + rng.NextBelow(std::min<size_t>(pts.size(), 12));
    const auto got = tree.Nearest(query, k);
    ASSERT_EQ(got.size(), k);
    std::vector<double> brute;
    for (const Point& p : pts) brute.push_back(Distance2(query, p));
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(got[i].distance2, brute[i]);
    }
  }
}

TEST_P(KdTreeSweepTest, RangeMatchesBruteForce) {
  const auto pts = RandomPoints(GetParam(), 503);
  const KdTree tree = KdTree::Build(pts);
  Rng rng(504);
  for (int q = 0; q < 20; ++q) {
    const double x0 = rng.Uniform(0, 800), y0 = rng.Uniform(0, 800);
    const Rect query(x0, y0, x0 + rng.Uniform(10, 400),
                     y0 + rng.Uniform(10, 400));
    auto got = tree.RangeQuery(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (query.Contains(pts[i])) want.push_back(static_cast<int64_t>(i));
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeSweepTest,
                         ::testing::Values(1, 7, 8, 9, 100, 2000));

TEST(KdTreeTest, StreamEnumeratesAllInOrder) {
  const auto pts = RandomPoints(700, 505);
  const KdTree tree = KdTree::Build(pts);
  KdTree::NearestStream stream(tree, {500, 500});
  KdTree::Neighbor nb;
  double prev = -1.0;
  size_t count = 0;
  while (stream.Next(&nb)) {
    EXPECT_GE(nb.distance2, prev);
    prev = nb.distance2;
    ++count;
  }
  EXPECT_EQ(count, pts.size());
}

TEST(KdTreeTest, AgreesWithRTreeOnIdenticalQueries) {
  const auto pts = RandomPoints(1500, 506);
  const KdTree kd = KdTree::Build(pts);
  const RTree rt = RTree::BulkLoadPoints(pts);
  Rng rng(507);
  for (int q = 0; q < 15; ++q) {
    const Point query{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const auto a = kd.Nearest(query, 10);
    const auto b = rt.Nearest(query, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].distance2, b[i].distance2);
    }
  }
}

TEST(KdTreeTest, DuplicatePointsAllReported) {
  const std::vector<Point> pts(9, Point{5, 5});
  const KdTree tree = KdTree::Build(pts);
  EXPECT_EQ(tree.Nearest({5, 5}, 9).size(), 9u);
  EXPECT_EQ(tree.RangeQuery(Rect(4, 4, 6, 6)).size(), 9u);
}

TEST(KdTreeTest, CollinearDegenerateInput) {
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const KdTree tree = KdTree::Build(pts);
  const auto nn = tree.Nearest({50.4, 0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 50);
}

}  // namespace
}  // namespace movd
