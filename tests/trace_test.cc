#include "trace/trace.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/molq.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace movd {
namespace {

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

const TraceSpanRecord* FindByName(const std::vector<TraceSpanRecord>& records,
                                  const std::string& name) {
  for (const TraceSpanRecord& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST(TraceTest, NoAmbientTraceMeansSpansAreNoOps) {
  ASSERT_EQ(Trace::ThreadCurrent(), nullptr);
  {
    TRACE_SPAN("ignored");
    TraceSpan counted("also_ignored");
    counted.Counter("items", 7);
    EXPECT_EQ(Trace::ThreadCurrent(), nullptr);
  }
  const Trace::Context ctx = Trace::CaptureContext();
  EXPECT_EQ(ctx.trace, nullptr);
  EXPECT_EQ(ctx.span, 0u);
}

TEST(TraceTest, ScopeInstallsAndRestoresAmbientTrace) {
  Trace trace;
  {
    TraceContextScope scope(&trace);
    EXPECT_EQ(Trace::ThreadCurrent(), &trace);
    {
      Trace inner;
      TraceContextScope nested(&inner);
      EXPECT_EQ(Trace::ThreadCurrent(), &inner);
    }
    EXPECT_EQ(Trace::ThreadCurrent(), &trace);
  }
  EXPECT_EQ(Trace::ThreadCurrent(), nullptr);
}

TEST(TraceTest, NestedSpansRecordParentAndDepth) {
  Trace trace;
  {
    TraceContextScope scope(&trace);
    TRACE_SPAN("root");
    {
      TRACE_SPAN("child");
      { TRACE_SPAN("grandchild"); }
    }
    { TRACE_SPAN("second_child"); }
  }
  const std::vector<TraceSpanRecord> records = trace.Collect();
  ASSERT_EQ(records.size(), 4u);

  const TraceSpanRecord* root = FindByName(records, "root");
  const TraceSpanRecord* child = FindByName(records, "child");
  const TraceSpanRecord* grandchild = FindByName(records, "grandchild");
  const TraceSpanRecord* second = FindByName(records, "second_child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  ASSERT_NE(second, nullptr);

  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(root->depth, 0);
  EXPECT_EQ(&records[child->parent], root);
  EXPECT_EQ(child->depth, 1);
  EXPECT_EQ(&records[grandchild->parent], child);
  EXPECT_EQ(grandchild->depth, 2);
  EXPECT_EQ(&records[second->parent], root);
  EXPECT_EQ(second->depth, 1);

  // A child is contained in its parent's interval.
  EXPECT_GE(child->start_ns, root->start_ns);
  EXPECT_LE(child->start_ns + child->dur_ns, root->start_ns + root->dur_ns);
}

TEST(TraceTest, ParallelForBodiesParentToTheCallSiteSpan) {
  constexpr size_t kIterations = 32;
  Trace trace;
  {
    TraceContextScope scope(&trace);
    TRACE_SPAN("parallel_region");
    const Trace::Context ctx = Trace::CaptureContext();
    ParallelFor(4, kIterations, [&](size_t) {
      TraceContextScope handoff(ctx);
      TRACE_SPAN("body");
    });
  }
  const std::vector<TraceSpanRecord> records = trace.Collect();
  ASSERT_EQ(records.size(), kIterations + 1);

  const TraceSpanRecord* region = FindByName(records, "parallel_region");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->parent, -1);
  EXPECT_EQ(region->tid, 0);

  size_t bodies = 0;
  for (const TraceSpanRecord& r : records) {
    if (r.name != "body") continue;
    ++bodies;
    // Cross-thread parenting: every body span hangs off the span that was
    // open at the ParallelFor call site, whatever thread it ran on.
    ASSERT_GE(r.parent, 0);
    EXPECT_EQ(&records[r.parent], region);
    EXPECT_EQ(r.depth, 1);
    EXPECT_GE(r.tid, 0);
  }
  EXPECT_EQ(bodies, kIterations);
}

TEST(TraceTest, CountersAccumulatePerSpanAndAggregateByPhase) {
  Trace trace;
  {
    TraceContextScope scope(&trace);
    for (int i = 0; i < 3; ++i) {
      TraceSpan span("optimize_cell");
      span.Counter("iterations", 10);
      span.Counter("iterations", 2);
      span.Counter("pruned", 1);
    }
  }
  const std::vector<TraceSpanRecord> records = trace.Collect();
  ASSERT_EQ(records.size(), 3u);
  for (const TraceSpanRecord& r : records) {
    ASSERT_EQ(r.counters.size(), 2u);  // same-key deltas fold into one entry
    EXPECT_EQ(r.counters[0].first, "iterations");
    EXPECT_EQ(r.counters[0].second, 12);
    EXPECT_EQ(r.counters[1].first, "pruned");
    EXPECT_EQ(r.counters[1].second, 1);
  }

  const std::vector<TracePhaseRow> phases = trace.AggregatePhases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "optimize_cell");
  EXPECT_EQ(phases[0].count, 3);
  EXPECT_GE(phases[0].total_ns, phases[0].self_ns);
  ASSERT_EQ(phases[0].counters.size(), 2u);
  EXPECT_EQ(phases[0].counters[0].second, 36);  // 3 spans x 12
  EXPECT_EQ(phases[0].counters[1].second, 3);
}

TEST(TraceTest, ChromeJsonHasMatchedBeginEndEventsPerSpan) {
  constexpr size_t kIterations = 8;
  Trace trace;
  {
    TraceContextScope scope(&trace);
    TRACE_SPAN("outer");
    const Trace::Context ctx = Trace::CaptureContext();
    ParallelFor(3, kIterations, [&](size_t) {
      TraceContextScope handoff(ctx);
      TraceSpan span("body");
      span.Counter("touched", 1);
    });
  }
  const std::string json = trace.ChromeJson();

  // Well-formed trace_event envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  const std::string tail = "],\"displayTimeUnit\":\"ms\"}\n";
  ASSERT_GE(json.size(), tail.size());
  EXPECT_EQ(json.substr(json.size() - tail.size()), tail);

  // Every recorded span contributes exactly one B and one E event.
  const size_t begins = CountOccurrences(json, "\"ph\":\"B\"");
  const size_t ends = CountOccurrences(json, "\"ph\":\"E\"");
  EXPECT_EQ(begins, kIterations + 1);
  EXPECT_EQ(ends, begins);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"outer\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"body\""), 2 * kIterations);
  // Counters ride in the end events' args.
  EXPECT_EQ(CountOccurrences(json, "\"touched\":1"), kIterations);
}

MolqQuery TracedQuery() {
  Rng rng(614);
  MolqQuery query;
  for (int s = 0; s < 3; ++s) {
    ObjectSet set;
    set.name = std::string("type") += std::to_string(s);
    const double type_weight = rng.Uniform(0.5, 4.0);
    for (int i = 0; i < 18; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(5, 95), rng.Uniform(5, 95)};
      obj.type_weight = type_weight;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(TraceTest, ParallelAnswersAreBitIdenticalWithTracingOnAndOff) {
  // Tracing observes the pipeline without ordering it: with the same
  // options the answer bytes must not depend on whether a trace is
  // attached, including under a multi-threaded run.
  const MolqQuery query = TracedQuery();
  const Rect world(0, 0, 100, 100);

  MolqOptions plain;
  plain.epsilon = 1e-6;
  plain.exec.threads = 4;
  const MolqResult off = SolveMolq(query, world, plain);

  Trace trace;
  MolqOptions traced = plain;
  traced.exec.trace = &trace;
  const MolqResult on = SolveMolq(query, world, traced);

  EXPECT_EQ(on.status, StatusCode::kOk);
  EXPECT_TRUE(BitIdentical(on.location.x, off.location.x));
  EXPECT_TRUE(BitIdentical(on.location.y, off.location.y));
  EXPECT_TRUE(BitIdentical(on.cost, off.cost));
  ASSERT_EQ(on.group.size(), off.group.size());
  for (size_t i = 0; i < on.group.size(); ++i) {
    EXPECT_EQ(on.group[i].set, off.group[i].set);
    EXPECT_EQ(on.group[i].object, off.group[i].object);
  }

  // The traced run hands back its sink and recorded the pipeline phases.
  EXPECT_EQ(on.trace, &trace);
  EXPECT_EQ(off.trace, nullptr);
  const std::vector<TraceSpanRecord> records = trace.Collect();
  EXPECT_FALSE(records.empty());
  EXPECT_NE(FindByName(records, "solve_molq"), nullptr);
  EXPECT_NE(FindByName(records, "vd_generator"), nullptr);
  EXPECT_NE(FindByName(records, "movd_overlap"), nullptr);
}

}  // namespace
}  // namespace movd
