// Tests for the invariant-audit subsystem (src/audit, DESIGN.md §7):
// every auditor must accept clean structures, and must pinpoint — with the
// right AuditKind and witness — a deliberately injected corruption.
#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.h"
#include "audit/audit_delaunay.h"
#include "audit/audit_overlay.h"
#include "audit/audit_polygon.h"
#include "audit/audit_voronoi.h"
#include "audit/audit_weighted.h"
#include "core/molq.h"
#include "model/movd_model.h"
#include "core/overlap.h"
#include "util/rng.h"
#include "voronoi/delaunay.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  return pts;
}

// ---------------------------------------------------------------------------
// AuditPolygon / AuditConvexPolygon

TEST(AuditPolygonTest, AcceptsCleanSquare) {
  const Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const AuditReport report = AuditPolygon(square);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.checks(), 0u);
}

TEST(AuditPolygonTest, DetectsBowtieSelfIntersection) {
  // Edges (0,0)->(2,2) and (2,0)->(0,2) properly cross at (1,1).
  const Polygon bowtie({{0, 0}, {2, 2}, {2, 0}, {0, 2}});
  const AuditReport report = AuditPolygon(bowtie);
  EXPECT_GE(report.CountKind(AuditKind::kPolygonSelfIntersection), 1u)
      << report.Summary();
}

// Polygon's constructor dedups and normalises to CCW, so orientation and
// duplicate corruptions can only enter through the trusted-ring path.
TEST(AuditPolygonTest, DetectsClockwiseRing) {
  const ConvexPolygon cw = ConvexPolygon::FromTrustedRing(
      {{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  const AuditReport report = AuditConvexPolygon(cw);
  EXPECT_GE(report.CountKind(AuditKind::kPolygonOrientation), 1u)
      << report.Summary();
}

TEST(AuditPolygonTest, DetectsConsecutiveDuplicate) {
  const ConvexPolygon dup = ConvexPolygon::FromTrustedRing(
      {{0, 0}, {10, 0}, {10, 0}, {10, 10}, {0, 10}});
  const AuditReport report = AuditConvexPolygon(dup);
  EXPECT_GE(report.CountKind(AuditKind::kPolygonDuplicateVertex), 1u)
      << report.Summary();
}

TEST(AuditPolygonTest, AcceptsWeaklySimplePinchRing) {
  // Two unit squares joined at the pinch vertex (1,1): non-adjacent edges
  // touch at a point but never cross. Grid-dominance covers legitimately
  // produce such rings.
  const Polygon pinch({{0, 0}, {1, 0}, {1, 1}, {2, 1},
                       {2, 2}, {1, 2}, {1, 1}, {0, 1}});
  const AuditReport report = AuditPolygon(pinch);
  EXPECT_EQ(report.CountKind(AuditKind::kPolygonSelfIntersection), 0u)
      << report.Summary();
}

TEST(AuditConvexPolygonTest, DetectsConcaveDent) {
  const ConvexPolygon dented = ConvexPolygon::FromTrustedRing(
      {{0, 0}, {10, 0}, {5, 3}, {10, 10}, {0, 10}});
  const AuditReport report = AuditConvexPolygon(dented);
  EXPECT_GE(report.CountKind(AuditKind::kPolygonNotConvex), 1u)
      << report.Summary();
}

// ---------------------------------------------------------------------------
// AuditDelaunay

TEST(AuditDelaunayTest, AcceptsCleanTriangulation) {
  const Delaunay dt(RandomPoints(60, 11));
  const AuditReport report = AuditDelaunay(dt);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.checks(), 0u);
}

TEST(AuditDelaunayTest, AcceptsCollinearBoundaryChains) {
  // Points exactly on one line of the bounding box: the hull edge between
  // the extreme corners is subdivided by the triangulation.
  std::vector<Point> pts = RandomPoints(20, 12);
  for (int i = 0; i < 5; ++i) pts.push_back({20.0 * i + 5.0, 0.0});
  const Delaunay dt(pts);
  const AuditReport report = AuditDelaunay(dt);
  EXPECT_EQ(report.CountKind(AuditKind::kDelaunayHullEdge), 0u)
      << report.Summary();
}

// The quad (0,0) (1,0) (1,1.2) (0,1): diagonal (1)-(3) is Delaunay,
// diagonal (0)-(2) is not — each of its triangles' circumcircles contains
// the opposite vertex.
std::vector<Point> QuadPoints() {
  return {{0, 0}, {1, 0}, {1, 1.2}, {0, 1}};
}

TEST(AuditDelaunayTest, AcceptsCorrectDiagonal) {
  // Triangles (0,1,3) and (1,2,3); shared edge (1,3).
  const std::vector<Delaunay::Triangle> tris = {
      {{0, 1, 3}, {1, -1, -1}},
      {{1, 2, 3}, {-1, 0, -1}},
  };
  const AuditReport report = AuditDelaunayTriangles(QuadPoints(), 4, tris);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(AuditDelaunayTest, DetectsFlippedDiagonal) {
  // Triangles (0,1,2) and (0,2,3): the wrong diagonal (0)-(2). Vertex 3
  // sits inside circum(0,1,2) and vertex 1 inside circum(0,2,3).
  const std::vector<Delaunay::Triangle> tris = {
      {{0, 1, 2}, {-1, 1, -1}},
      {{0, 2, 3}, {-1, -1, 0}},
  };
  const AuditReport report =
      AuditDelaunayTriangles(QuadPoints(), 4, tris);
  ASSERT_EQ(report.CountKind(AuditKind::kDelaunayCircumcircle), 2u)
      << report.Summary();
  // The witness pinpoints the offending (triangle, point) pairs.
  std::vector<std::pair<int64_t, int64_t>> offenders;
  for (const AuditViolation& v : report.violations()) {
    if (v.kind == AuditKind::kDelaunayCircumcircle) {
      ASSERT_EQ(v.indices.size(), 2u);
      offenders.emplace_back(v.indices[0], v.indices[1]);
    }
  }
  std::sort(offenders.begin(), offenders.end());
  EXPECT_EQ(offenders[0], std::make_pair(int64_t{0}, int64_t{3}));
  EXPECT_EQ(offenders[1], std::make_pair(int64_t{1}, int64_t{1}));
}

TEST(AuditDelaunayTest, DetectsClockwiseTriangle) {
  const std::vector<Delaunay::Triangle> tris = {
      {{1, 0, 3}, {1, -1, -1}},  // (0,1,3) with two vertices swapped
      {{1, 2, 3}, {-1, 0, -1}},
  };
  const AuditReport report = AuditDelaunayTriangles(QuadPoints(), 4, tris);
  EXPECT_GE(report.CountKind(AuditKind::kDelaunayOrientation), 1u)
      << report.Summary();
}

TEST(AuditDelaunayTest, DetectsBrokenNeighborLink) {
  const std::vector<Delaunay::Triangle> tris = {
      {{0, 1, 3}, {1, -1, -1}},
      {{1, 2, 3}, {-1, -1, -1}},  // does not point back across (1,3)
  };
  const AuditReport report = AuditDelaunayTriangles(QuadPoints(), 4, tris);
  EXPECT_GE(report.CountKind(AuditKind::kDelaunayNeighborSymmetry), 1u)
      << report.Summary();
}

// ---------------------------------------------------------------------------
// AuditVoronoi

// A hand-built 2x2 diagram whose cells are exact 50x50 squares.
std::vector<Point> SquareSites() {
  return {{25, 25}, {75, 25}, {25, 75}, {75, 75}};
}

std::vector<VoronoiCell> SquareCells() {
  std::vector<VoronoiCell> cells(4);
  const auto ring = [](double x0, double y0) {
    return ConvexPolygon::FromTrustedRing(
        {{x0, y0}, {x0 + 50, y0}, {x0 + 50, y0 + 50}, {x0, y0 + 50}});
  };
  cells[0] = {0, ring(0, 0)};
  cells[1] = {1, ring(50, 0)};
  cells[2] = {2, ring(0, 50)};
  cells[3] = {3, ring(50, 50)};
  return cells;
}

TEST(AuditVoronoiTest, AcceptsCleanDiagramBothStrategies) {
  const auto pts = RandomPoints(40, 21);
  for (const auto strategy : {VoronoiDiagram::Strategy::kNearestNeighbor,
                              VoronoiDiagram::Strategy::kDelaunay}) {
    const auto vd = VoronoiDiagram::Build(pts, kBounds, strategy);
    const AuditReport report = AuditVoronoi(vd);
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_GT(report.checks(), 0u);
  }
}

TEST(AuditVoronoiTest, AcceptsHandBuiltSquares) {
  const AuditReport report =
      AuditVoronoiCells(SquareSites(), SquareCells(), kBounds);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(AuditVoronoiTest, DetectsPerturbedVertex) {
  auto cells = SquareCells();
  // Pull cell 0's corner (50,50) to (60,60): its interior now overlaps
  // its neighbours and the areas no longer tile the bounds.
  cells[0].region = ConvexPolygon::FromTrustedRing(
      {{0, 0}, {50, 0}, {60, 60}, {0, 50}});
  const AuditReport report =
      AuditVoronoiCells(SquareSites(), cells, kBounds);
  EXPECT_GE(report.CountKind(AuditKind::kVoronoiCellOverlap), 1u)
      << report.Summary();
  EXPECT_GE(report.CountKind(AuditKind::kVoronoiCoverage), 1u)
      << report.Summary();
}

TEST(AuditVoronoiTest, DetectsVertexOutsideBounds) {
  auto cells = SquareCells();
  cells[3].region = ConvexPolygon::FromTrustedRing(
      {{50, 50}, {100, 50}, {110, 110}, {50, 100}});
  const AuditReport report =
      AuditVoronoiCells(SquareSites(), cells, kBounds);
  EXPECT_GE(report.CountKind(AuditKind::kVoronoiVertexOutOfBounds), 1u)
      << report.Summary();
}

TEST(AuditVoronoiTest, DetectsSwappedCells) {
  auto cells = SquareCells();
  std::swap(cells[0].region, cells[1].region);
  const AuditReport report =
      AuditVoronoiCells(SquareSites(), cells, kBounds);
  EXPECT_GE(report.CountKind(AuditKind::kVoronoiSiteNotInCell), 2u)
      << report.Summary();
}

// ---------------------------------------------------------------------------
// AuditWeightedCells

std::vector<WeightedSite> RandomWeightedSites(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedSite> sites;
  for (const Point& p : RandomPoints(n, seed)) {
    sites.push_back(MultiplicativeSite(p, rng.Uniform(0.5, 2.0)));
  }
  return sites;
}

constexpr int kResolution = 32;

// Dense cells through the WeightedOptions dispatch (direct
// ApproximateWeightedVoronoi calls are lint-rejected); these audits assert
// the dense sampler's invariants, so the method is pinned.
std::vector<WeightedCellApprox> DenseWeightedCells(
    const std::vector<WeightedSite>& sites) {
  WeightedOptions opts;
  opts.method = WeightedMethod::kDenseGrid;
  opts.resolution = kResolution;
  return BuildWeightedCells(sites, kBounds, opts);
}

TEST(AuditWeightedTest, AcceptsCleanApproximation) {
  const auto sites = RandomWeightedSites(8, 31);
  const auto cells = DenseWeightedCells(sites);
  const AuditReport report =
      AuditWeightedCells(sites, cells, kBounds, kResolution);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.checks(), 0u);
}

TEST(AuditWeightedTest, DetectsHullVertexOutsideDominanceRegion) {
  const auto sites = RandomWeightedSites(8, 31);
  auto cells = DenseWeightedCells(sites);
  // Move one hull vertex of a non-empty cell onto a DIFFERENT generator's
  // location: the weighted distance there is exactly zero for that
  // generator, so the dominance re-check must attribute it elsewhere.
  size_t victim = cells.size(), other = cells.size();
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].empty || cells[i].hull.Empty()) continue;
    if (victim == cells.size()) {
      victim = i;
    } else if (other == cells.size()) {
      other = i;
    }
  }
  ASSERT_LT(victim, cells.size());
  ASSERT_LT(other, cells.size());
  std::vector<Point> ring = cells[victim].hull.vertices();
  ring[0] = sites[other].location;
  cells[victim].hull = Polygon(std::move(ring));
  cells[victim].mbr.Expand(sites[other].location);  // keep the MBR honest
  const AuditReport report =
      AuditWeightedCells(sites, cells, kBounds, kResolution);
  EXPECT_GE(report.CountKind(AuditKind::kWeightedDominance), 1u)
      << report.Summary();
  // The witness names the tampered cell.
  bool found = false;
  for (const AuditViolation& v : report.violations()) {
    if (v.kind == AuditKind::kWeightedDominance && !v.indices.empty() &&
        v.indices[0] == static_cast<int64_t>(victim)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.Summary();
}

TEST(AuditWeightedTest, DetectsSampleCountTampering) {
  const auto sites = RandomWeightedSites(8, 31);
  auto cells = DenseWeightedCells(sites);
  for (auto& cell : cells) {
    if (!cell.empty) {
      cell.sample_count += 5;
      break;
    }
  }
  const AuditReport report =
      AuditWeightedCells(sites, cells, kBounds, kResolution);
  EXPECT_GE(report.CountKind(AuditKind::kWeightedSampleCount), 1u)
      << report.Summary();
}

TEST(AuditWeightedTest, DetectsEmptyFlagMismatch) {
  const auto sites = RandomWeightedSites(8, 31);
  auto cells = DenseWeightedCells(sites);
  for (auto& cell : cells) {
    if (!cell.empty) {
      cell.empty = true;  // still carries samples, hull, cover
      break;
    }
  }
  const AuditReport report =
      AuditWeightedCells(sites, cells, kBounds, kResolution);
  EXPECT_GE(report.CountKind(AuditKind::kWeightedEmptyFlag), 1u)
      << report.Summary();
}

// ---------------------------------------------------------------------------
// AuditMovdOverlay

// Basic MOVDs: set 0 from the 2x2 square diagram, set 1 a single site
// owning the whole bounds.
struct OverlayFixture {
  Movd a, b, result;
  std::vector<Movd> inputs;
};

OverlayFixture BuildOverlay(BoundaryMode mode) {
  OverlayFixture f;
  const auto vd_a = VoronoiDiagram::Build(SquareSites(), kBounds);
  f.a = MovdFromVoronoi(vd_a, 0, {0, 1, 2, 3});
  const auto vd_b = VoronoiDiagram::Build({{50, 50}}, kBounds);
  f.b = MovdFromVoronoi(vd_b, 1, {0});
  f.inputs = {f.a, f.b};
  f.result = OverlapAll(f.inputs, mode);
  return f;
}

TEST(AuditOverlayTest, AcceptsCleanOverlapBothModes) {
  for (const auto mode : {BoundaryMode::kRealRegion, BoundaryMode::kMbr}) {
    const OverlayFixture f = BuildOverlay(mode);
    ASSERT_EQ(f.result.ovrs.size(), 4u);
    const AuditReport report =
        AuditMovdOverlay(f.result, f.inputs, mode, kBounds);
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_GT(report.checks(), 0u);
  }
}

TEST(AuditOverlayTest, DetectsPoiOrderCorruption) {
  OverlayFixture f = BuildOverlay(BoundaryMode::kRealRegion);
  ASSERT_GE(f.result.ovrs[0].pois.size(), 2u);
  std::swap(f.result.ovrs[0].pois[0], f.result.ovrs[0].pois[1]);
  const AuditReport report = AuditMovdOverlay(
      f.result, f.inputs, BoundaryMode::kRealRegion, kBounds);
  EXPECT_GE(report.CountKind(AuditKind::kOverlayPoiOrder), 1u)
      << report.Summary();
}

TEST(AuditOverlayTest, DetectsMbrEscapingSearchSpace) {
  OverlayFixture f = BuildOverlay(BoundaryMode::kMbr);
  f.result.ovrs[0].mbr.Expand({150, 150});
  const AuditReport report =
      AuditMovdOverlay(f.result, f.inputs, BoundaryMode::kMbr, kBounds);
  EXPECT_GE(report.CountKind(AuditKind::kOverlayMbr), 1u)
      << report.Summary();
}

TEST(AuditOverlayTest, DetectsRegionLeakingOutsideSource) {
  OverlayFixture f = BuildOverlay(BoundaryMode::kRealRegion);
  // Find the OVR descending from set-0 cell 0 ([0,50]^2) and translate its
  // region into a sibling cell's territory; keep its own MBR consistent so
  // only the source-containment invariant can catch it.
  size_t idx = f.result.ovrs.size();
  for (size_t i = 0; i < f.result.ovrs.size(); ++i) {
    const auto& pois = f.result.ovrs[i].pois;
    if (!pois.empty() && pois[0].set == 0 && pois[0].object == 0) idx = i;
  }
  ASSERT_LT(idx, f.result.ovrs.size());
  Ovr& ovr = f.result.ovrs[idx];
  std::vector<ConvexPolygon> moved;
  for (const ConvexPolygon& piece : ovr.region.pieces()) {
    std::vector<Point> ring = piece.vertices();
    for (Point& p : ring) p = p + Point(50, 0);
    moved.push_back(ConvexPolygon::FromTrustedRing(std::move(ring)));
  }
  ovr.region = Region::FromPieces(std::move(moved));
  ovr.mbr = ovr.region.Bbox();
  const AuditReport report = AuditMovdOverlay(
      f.result, f.inputs, BoundaryMode::kRealRegion, kBounds);
  EXPECT_GE(report.CountKind(AuditKind::kOverlaySource), 1u)
      << report.Summary();
}

// ---------------------------------------------------------------------------
// Clean end-to-end pipelines under MolqOptions::audit

MolqQuery TwoSetQuery(uint64_t seed, bool weighted) {
  Rng rng(seed * 977 + 5);
  MolqQuery query;
  for (int s = 0; s < 2; ++s) {
    ObjectSet set;
    set.name = s == 0 ? "alpha" : "beta";
    for (const Point& p : RandomPoints(24, seed * 7 + s)) {
      SpatialObject obj;
      obj.location = p;
      obj.object_weight = weighted ? rng.Uniform(0.5, 2.0) : 1.0;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

class AuditPipelineTest
    : public ::testing::TestWithParam<std::tuple<MolqAlgorithm, int>> {};

TEST_P(AuditPipelineTest, CleanPipelineReportsNoViolations) {
  const auto [algorithm, threads] = GetParam();
  for (const uint64_t seed : {1u, 2u, 3u}) {
    for (const bool weighted : {false, true}) {
      MolqOptions options;
      options.algorithm = algorithm;
      options.exec.audit = true;
      options.exec.threads = threads;
      options.exec.weighted_grid_resolution = 48;
      const MolqResult result =
          SolveMolq(TwoSetQuery(seed, weighted), kBounds, options);
      EXPECT_GT(result.audit.checks(), 0u);
      EXPECT_TRUE(result.audit.ok())
          << "seed " << seed << " weighted " << weighted << ": "
          << result.audit.Messages().front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AuditPipelineTest,
    ::testing::Combine(::testing::Values(MolqAlgorithm::kRrb,
                                         MolqAlgorithm::kMbrb),
                       ::testing::Values(1, 4)));

TEST(AuditPipelineTest, AuditOffCollectsNothing) {
  MolqOptions options;
  options.exec.audit = false;
  const MolqResult result =
      SolveMolq(TwoSetQuery(1, false), kBounds, options);
  EXPECT_EQ(result.audit.checks(), 0u);
  EXPECT_TRUE(result.audit.ok());
}

}  // namespace
}  // namespace movd
