// End-to-end integration: the CSV data path feeding the full query engine
// (what examples/molq_cli does), all algorithms and extensions agreeing on
// one realistic workload.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/molq.h"
#include "core/topk.h"
#include "core/weighted_distance.h"
#include "data/csv.h"
#include "data/generate.h"
#include "storage/external_sort.h"
#include "storage/movd_file.h"
#include "storage/streaming_overlap.h"

namespace movd {
namespace {

constexpr Rect kWorld(0, 0, 10000, 10000);

std::string Tmp(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

MolqQuery LoadQueryViaCsv() {
  // Generate three GeoNames-like layers, round-trip each through CSV, and
  // assemble the query — the exact CLI data path.
  MolqQuery query;
  const char* classes[] = {"STM", "CH", "SCH"};
  const double type_weights[] = {2.0, 1.0, 3.0};
  for (int s = 0; s < 3; ++s) {
    const auto points = SamplePoiClass(classes[s], 40, kWorld, 77 + s);
    std::vector<SpatialObject> objects;
    for (const Point& p : points) {
      SpatialObject obj;
      obj.location = p;
      obj.type_weight = type_weights[s];
      objects.push_back(obj);
    }
    const std::string path = Tmp(std::string("itest_") + classes[s] + ".csv");
    EXPECT_TRUE(SaveObjectsCsv(path, objects));
    const auto loaded = LoadObjectsCsv(path);
    EXPECT_TRUE(loaded.has_value());
    ObjectSet set;
    set.name = classes[s];
    set.objects = *loaded;
    query.sets.push_back(std::move(set));
    std::remove(path.c_str());
  }
  return query;
}

TEST(IntegrationTest, FullPipelineAgreesAcrossAllPaths) {
  const MolqQuery query = LoadQueryViaCsv();

  MolqOptions opts;
  opts.epsilon = 1e-6;
  opts.algorithm = MolqAlgorithm::kSsc;
  const auto ssc = SolveMolq(query, kWorld, opts);

  opts.algorithm = MolqAlgorithm::kRrb;
  const auto rrb = SolveMolq(query, kWorld, opts);

  opts.algorithm = MolqAlgorithm::kMbrb;
  opts.dedup_combinations = true;
  const auto mbrb = SolveMolq(query, kWorld, opts);

  opts.algorithm = MolqAlgorithm::kRrb;
  opts.use_overlap_pruning = true;
  const auto pruned = SolveMolq(query, kWorld, opts);

  const double tol = 1e-5 * ssc.cost + 1e-9;
  EXPECT_NEAR(rrb.cost, ssc.cost, tol);
  EXPECT_NEAR(mbrb.cost, ssc.cost, tol);
  EXPECT_NEAR(pruned.cost, ssc.cost, tol);

  // Top-1 of the top-k API matches too.
  const auto topk = SolveMolqTopK(query, kWorld, 3, MolqOptions{});
  ASSERT_GE(topk.ranked.size(), 1u);
  EXPECT_NEAR(topk.ranked[0].cost, ssc.cost, 1e-3 * ssc.cost);

  // The reported cost is a true MWGD value at the reported location.
  EXPECT_NEAR(MinWeightedGroupDistance(query, rrb.location), rrb.cost, tol);
}

TEST(IntegrationTest, DiskPipelineMatchesInMemoryEndToEnd) {
  const MolqQuery query = LoadQueryViaCsv();
  // Build basic MOVDs, push two of them through disk (sort + streaming
  // overlap), then overlap the third in memory and optimize.
  std::vector<Movd> basic;
  for (int32_t s = 0; s < 3; ++s) {
    basic.push_back(BuildBasicMovd(query, s, kWorld, 128));
  }
  const std::string pa = Tmp("it_a.bin"), pb = Tmp("it_b.bin");
  const std::string sa = Tmp("it_sa.bin"), sb = Tmp("it_sb.bin");
  const std::string out = Tmp("it_out.bin");
  ASSERT_TRUE(SaveMovd(pa, basic[0]).ok());
  ASSERT_TRUE(SaveMovd(pb, basic[1]).ok());
  ASSERT_TRUE(ExternalSortMovdFile(pa, sa, 8 << 10));
  ASSERT_TRUE(ExternalSortMovdFile(pb, sb, 8 << 10));
  ASSERT_TRUE(
      StreamingOverlap(sa, sb, BoundaryMode::kRealRegion, out, nullptr));
  const auto partial = LoadMovd(out);
  ASSERT_TRUE(partial.has_value());
  const Movd full = Overlap(*partial, basic[2], BoundaryMode::kRealRegion);

  OptimizerOptions oopts;
  oopts.epsilon = 1e-6;
  const OptimizerResult via_disk = OptimizeMovd(query, full, oopts);

  MolqOptions mopts;
  mopts.epsilon = 1e-6;
  const MolqResult direct = SolveMolq(query, kWorld, mopts);
  EXPECT_NEAR(via_disk.cost, direct.cost, 1e-5 * direct.cost + 1e-9);
  for (const auto& p : {pa, pb, sa, sb, out}) std::remove(p.c_str());
}

}  // namespace
}  // namespace movd
