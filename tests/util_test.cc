#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/hilbert.h"
#include "util/rng.h"
#include "util/table.h"

namespace movd {
namespace {

TEST(RngTest, DeterministicSequences) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= a2.NextU64() != c.NextU64();
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextBelowIsUnbiasedEnough) {
  Rng rng(6);
  int counts[10] = {};
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBelow(10)];
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(FlagsTest, ParsesValuesAndDefaults) {
  const char* argv[] = {"prog", "--size=100",   "--epsilon=0.5",
                        "--on", "--off=false", "positional"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("size", 1), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 1.0), 0.5);
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_FALSE(flags.GetBool("off", true));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_TRUE(flags.Has("size"));
  EXPECT_FALSE(flags.Has("nope"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, MalformedNumbersFallBackToDefault) {
  const char* argv[] = {"prog", "--size=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("size", 3), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("size", 2.5), 2.5);
}

TEST(FlagsTest, WarnUnusedReportsOnlyUnqueriedFlags) {
  const char* argv[] = {"prog", "--size=100", "--typod_flag=1", "--other"};
  Flags flags(4, const_cast<char**>(argv));
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  // Nothing queried yet: every flag is "unused".
  EXPECT_EQ(flags.WarnUnused(sink), 3);
  // Querying (even via Has, even for a flag that is absent) marks names.
  EXPECT_EQ(flags.GetInt("size", 1), 100);
  EXPECT_FALSE(flags.Has("absent"));
  EXPECT_EQ(flags.WarnUnused(sink), 2);
  flags.GetBool("other", false);
  flags.GetInt("typod_flag", 0);
  EXPECT_EQ(flags.WarnUnused(sink), 0);
  std::fclose(sink);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "2.5"});
  // Render to a temp file and check content.
  const std::string path = ::testing::TempDir() + "/table.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  t.Print(f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "r");
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line), "name    value\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(TableTest, FmtRounds) {
  EXPECT_EQ(Table::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Fmt(1.235, 2), "1.24");  // round half up (to even digit)
  EXPECT_EQ(Table::Fmt(10.0, 0), "10");
}

TEST(HilbertTest, BijectiveOnSmallGrid) {
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      seen.insert(HilbertIndex(4, x, y));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(HilbertTest, AdjacentIndicesAreAdjacentCells) {
  // The Hilbert property: consecutive curve positions are grid neighbours.
  std::vector<std::pair<uint32_t, uint32_t>> by_index(256);
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      by_index[HilbertIndex(4, x, y)] = {x, y};
    }
  }
  for (size_t i = 1; i < by_index.size(); ++i) {
    const auto [x0, y0] = by_index[i - 1];
    const auto [x1, y1] = by_index[i];
    const uint32_t manhattan = (x0 > x1 ? x0 - x1 : x1 - x0) +
                               (y0 > y1 ? y0 - y1 : y1 - y0);
    EXPECT_EQ(manhattan, 1u) << "at index " << i;
  }
}

}  // namespace
}  // namespace movd
