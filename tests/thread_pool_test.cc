// Unit tests for the parallel substrate: the thread pool, ParallelFor and
// the shared atomic cost-bound primitive (CAS-min).

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace movd {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  int ran = 0;
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // executed synchronously, no Wait needed
  pool.Wait();        // must not deadlock with nothing queued
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int wave = 1; wave <= 3; ++wave) {
    for (int i = 0; i < 10; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(ran.load(), wave * 10);
  }
}

TEST(ThreadPoolTest, NegativeThreadCountClampsToZero) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.thread_count(), 0);
  int ran = 0;
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    std::vector<int> hits(1000, 0);
    ParallelFor(threads, hits.size(), [&](size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << "threads=" << threads;
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, EmptyAndSingleton) {
  int ran = 0;
  ParallelFor(8, 0, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  ParallelFor(8, 1, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ParallelForTest, SlotOutputsMatchSerialBitwise) {
  // The contract the pipeline relies on: per-slot outputs are identical
  // for every thread count because fn(i) depends only on i.
  const size_t n = 257;
  std::vector<double> serial(n);
  ParallelFor(1, n, [&](size_t i) {
    serial[i] = static_cast<double>(i) * 1.25 + 3.0;
  });
  for (const int threads : {2, 5, 8}) {
    std::vector<double> parallel(n);
    ParallelFor(threads, n, [&](size_t i) {
      parallel[i] = static_cast<double>(i) * 1.25 + 3.0;
    });
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(ResolveThreadsTest, LiteralAndAuto) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
  EXPECT_GE(ResolveThreads(0), 1);   // auto: at least one thread
  EXPECT_GE(ResolveThreads(-1), 1);
}

TEST(AtomicMinDoubleTest, LowersMonotonically) {
  std::atomic<double> bound{10.0};
  AtomicMinDouble(&bound, 12.0);
  EXPECT_EQ(bound.load(), 10.0);  // larger value is a no-op
  AtomicMinDouble(&bound, 7.5);
  EXPECT_EQ(bound.load(), 7.5);
  AtomicMinDouble(&bound, 7.5);
  EXPECT_EQ(bound.load(), 7.5);  // equal value is a no-op
}

TEST(AtomicMinDoubleTest, ConcurrentMinIsGlobalMin) {
  std::atomic<double> bound{1e300};
  ParallelFor(8, 5000, [&](size_t i) {
    AtomicMinDouble(&bound, static_cast<double>((i * 7919) % 5000) + 1.0);
  });
  EXPECT_EQ(bound.load(), 1.0);
}

}  // namespace
}  // namespace movd
