// Focused tests of the weighted-diagram pipeline: tight contour covers vs
// MBR covers, and end-to-end behaviour with per-object weights.

#include <gtest/gtest.h>

#include "core/grid_scan.h"
#include "core/molq.h"
#include "core/overlap.h"
#include "core/weighted_distance.h"
#include "util/rng.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

MolqQuery WeightedQuery(uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  for (int s = 0; s < 2; ++s) {
    ObjectSet set;
    set.name = std::string("t") += std::to_string(s);
    for (int i = 0; i < 6; ++i) {
      SpatialObject obj;
      obj.location = {rng.Uniform(10, 90), rng.Uniform(10, 90)};
      obj.object_weight = rng.Uniform(0.5, 2.0);  // forces weighted path
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

TEST(WeightedPipelineTest, ContourCoversAreTighterThanMbrs) {
  const MolqQuery q = WeightedQuery(1101);
  const Movd a = BuildBasicMovd(q, 0, kBounds, 96);
  const Movd b = BuildBasicMovd(q, 1, kBounds, 96);
  // Every weighted OVR's region is inside its MBR and no larger.
  double region_area = 0.0, mbr_area = 0.0;
  for (const Movd* m : {&a, &b}) {
    for (const Ovr& ovr : m->ovrs) {
      EXPECT_FALSE(ovr.region.Empty());
      EXPECT_LE(ovr.region.Area(), ovr.mbr.Area() + 1e-9);
      region_area += ovr.region.Area();
      mbr_area += ovr.mbr.Area();
    }
  }
  EXPECT_LT(region_area, mbr_area);
  // RRB on the tight covers produces no more OVRs than MBRB.
  const Movd rrb = Overlap(a, b, BoundaryMode::kRealRegion);
  const Movd mbrb = Overlap(a, b, BoundaryMode::kMbr);
  EXPECT_LE(rrb.ovrs.size(), mbrb.ovrs.size());
  EXPECT_GT(rrb.ovrs.size(), 0u);
}

TEST(WeightedPipelineTest, CoversRemainConservative) {
  // Conservativeness is what guarantees correctness: every location's
  // true per-type winner must appear in some OVR covering that location.
  const MolqQuery q = WeightedQuery(1102);
  const Movd basic = BuildBasicMovd(q, 0, kBounds, 96);
  Rng rng(1103);
  for (int trial = 0; trial < 200; ++trial) {
    const Point probe{rng.Uniform(1, 99), rng.Uniform(1, 99)};
    // True winner by direct weighted-distance evaluation.
    const auto group = ArgMinGroup(q, probe);
    bool covered = false;
    for (const Ovr& ovr : basic.ovrs) {
      if (ovr.pois[0].object == group[0] && ovr.region.Contains(probe)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "probe (" << probe.x << "," << probe.y << ")";
  }
}

class WeightedAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WeightedAgreementTest, RrbOnWeightedDiagramsMatchesSscAndGrid) {
  const MolqQuery q = WeightedQuery(GetParam());
  MolqOptions opts;
  opts.epsilon = 1e-6;
  opts.exec.weighted_grid_resolution = 96;
  opts.algorithm = MolqAlgorithm::kSsc;
  const auto ssc = SolveMolq(q, kBounds, opts);
  opts.algorithm = MolqAlgorithm::kRrb;
  const auto rrb = SolveMolq(q, kBounds, opts);
  opts.algorithm = MolqAlgorithm::kMbrb;
  const auto mbrb = SolveMolq(q, kBounds, opts);
  const double tol = 1e-5 * ssc.cost + 1e-9;
  EXPECT_NEAR(rrb.cost, ssc.cost, tol);
  EXPECT_NEAR(mbrb.cost, ssc.cost, tol);
  EXPECT_LE(rrb.cost, GridScanMolq(q, kBounds, 50).cost + tol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedAgreementTest,
                         ::testing::Values(1111, 1112, 1113, 1114, 1115));

}  // namespace
}  // namespace movd
