#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "voronoi/dynamic.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

constexpr Rect kBounds(0, 0, 100, 100);

// Compares the dynamic diagram against a fresh static build over the same
// live sites: same cells (matched by site location, compared by area and
// containment of the static cell's centroid).
void ExpectMatchesStaticBuild(const DynamicVoronoi& dyn) {
  std::vector<Point> live;
  for (const int32_t id : dyn.LiveSites()) {
    live.push_back(*dyn.SiteLocation(id));
  }
  if (live.empty()) return;
  const VoronoiDiagram vd = VoronoiDiagram::Build(live, kBounds);
  ASSERT_EQ(vd.sites().size(), dyn.size());
  for (size_t i = 0; i < vd.sites().size(); ++i) {
    // Find the dynamic cell with this site location.
    const ConvexPolygon* dyn_cell = nullptr;
    for (const int32_t id : dyn.LiveSites()) {
      if (*dyn.SiteLocation(id) == vd.sites()[i]) {
        dyn_cell = dyn.Cell(id);
        break;
      }
    }
    ASSERT_NE(dyn_cell, nullptr);
    EXPECT_NEAR(dyn_cell->Area(), vd.cells()[i].region.Area(),
                1e-6 * std::max(1.0, vd.cells()[i].region.Area()));
  }
  // Live cells must tile the bounds.
  double total = 0.0;
  for (const int32_t id : dyn.LiveSites()) total += dyn.Cell(id)->Area();
  EXPECT_NEAR(total, kBounds.Area(), 1e-5 * kBounds.Area());
}

TEST(DynamicVoronoiTest, FirstSiteOwnsEverything) {
  DynamicVoronoi dyn(kBounds);
  const auto id = dyn.InsertSite({50, 50});
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(dyn.Cell(*id)->Area(), kBounds.Area());
}

TEST(DynamicVoronoiTest, DuplicateInsertRejected) {
  DynamicVoronoi dyn(kBounds);
  ASSERT_TRUE(dyn.InsertSite({50, 50}).has_value());
  EXPECT_FALSE(dyn.InsertSite({50, 50}).has_value());
  EXPECT_EQ(dyn.size(), 1u);
}

TEST(DynamicVoronoiTest, InsertSplitsSpace) {
  DynamicVoronoi dyn(kBounds);
  const auto a = dyn.InsertSite({25, 50});
  const auto b = dyn.InsertSite({75, 50});
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(dyn.Cell(*a)->Area(), 5000.0);
  EXPECT_DOUBLE_EQ(dyn.Cell(*b)->Area(), 5000.0);
  ExpectMatchesStaticBuild(dyn);
}

TEST(DynamicVoronoiTest, RemoveGivesSpaceBack) {
  DynamicVoronoi dyn(kBounds);
  const auto a = dyn.InsertSite({25, 50});
  const auto b = dyn.InsertSite({75, 50});
  ASSERT_TRUE(a && b);
  ASSERT_TRUE(dyn.RemoveSite(*b));
  EXPECT_EQ(dyn.size(), 1u);
  EXPECT_DOUBLE_EQ(dyn.Cell(*a)->Area(), kBounds.Area());
  EXPECT_FALSE(dyn.RemoveSite(*b));  // already gone
  EXPECT_EQ(dyn.Cell(*b), nullptr);
}

TEST(DynamicVoronoiTest, BulkConstructorMatchesStatic) {
  Rng rng(601);
  std::vector<Point> sites;
  for (int i = 0; i < 50; ++i) {
    sites.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  const DynamicVoronoi dyn(sites, kBounds);
  EXPECT_EQ(dyn.size(), 50u);
  ExpectMatchesStaticBuild(dyn);
}

TEST(DynamicVoronoiTest, IncrementalInsertsMatchStaticBuild) {
  Rng rng(602);
  DynamicVoronoi dyn(kBounds);
  for (int i = 0; i < 60; ++i) {
    dyn.InsertSite({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    if (i % 15 == 14) ExpectMatchesStaticBuild(dyn);
  }
  ExpectMatchesStaticBuild(dyn);
}

class DynamicChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicChurnTest, RandomChurnStaysConsistent) {
  Rng rng(GetParam());
  DynamicVoronoi dyn(kBounds);
  std::vector<int32_t> live;
  for (int step = 0; step < 150; ++step) {
    if (live.empty() || rng.NextDouble() < 0.65) {
      const auto id =
          dyn.InsertSite({rng.Uniform(0, 100), rng.Uniform(0, 100)});
      if (id.has_value()) live.push_back(*id);
    } else {
      const size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(dyn.RemoveSite(live[pick]));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    if (step % 37 == 36) ExpectMatchesStaticBuild(dyn);
  }
  EXPECT_EQ(dyn.size(), live.size());
  ExpectMatchesStaticBuild(dyn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicChurnTest,
                         ::testing::Values(611, 612, 613));

TEST(DynamicVoronoiTest, RemoveDownToEmpty) {
  DynamicVoronoi dyn(kBounds);
  std::vector<int32_t> ids;
  Rng rng(614);
  for (int i = 0; i < 20; ++i) {
    const auto id =
        dyn.InsertSite({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  for (const int32_t id : ids) {
    ASSERT_TRUE(dyn.RemoveSite(id));
  }
  EXPECT_EQ(dyn.size(), 0u);
  EXPECT_TRUE(dyn.LiveSites().empty());
}

}  // namespace
}  // namespace movd
