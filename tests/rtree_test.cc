#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "util/rng.h"

namespace movd {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  return pts;
}

std::vector<int64_t> BruteRange(const std::vector<Point>& pts,
                                const Rect& query) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (query.Contains(pts[i])) out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree = RTree::BulkLoad({});
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.RangeQuery(Rect(0, 0, 10, 10)).empty());
  EXPECT_TRUE(tree.Nearest({0, 0}, 3).empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree = RTree::BulkLoadPoints({{5, 5}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.RangeQuery(Rect(0, 0, 10, 10)).size(), 1u);
  const auto nn = tree.Nearest({0, 0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 0);
  EXPECT_DOUBLE_EQ(nn[0].distance2, 50.0);
}

// Parameterized over data-set size: bulk-loaded trees must answer range
// and kNN queries exactly like brute force.
class RTreeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeSweepTest, RangeMatchesBruteForce) {
  const auto pts = RandomPoints(GetParam(), 31);
  const RTree tree = RTree::BulkLoadPoints(pts);
  Rng rng(32);
  for (int q = 0; q < 20; ++q) {
    const double x0 = rng.Uniform(0, 900), y0 = rng.Uniform(0, 900);
    const Rect query(x0, y0, x0 + rng.Uniform(10, 300),
                     y0 + rng.Uniform(10, 300));
    auto got = tree.RangeQuery(query);
    auto want = BruteRange(pts, query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(RTreeSweepTest, KnnMatchesBruteForce) {
  const auto pts = RandomPoints(GetParam(), 33);
  const RTree tree = RTree::BulkLoadPoints(pts);
  Rng rng(34);
  for (int q = 0; q < 20; ++q) {
    const Point query{rng.Uniform(-100, 1100), rng.Uniform(-100, 1100)};
    const size_t k = 1 + rng.NextBelow(std::min<size_t>(pts.size(), 16));
    const auto got = tree.Nearest(query, k);
    ASSERT_EQ(got.size(), k);
    // Distances must be sorted and match brute-force order.
    std::vector<double> brute;
    for (const Point& p : pts) brute.push_back(Distance2(query, p));
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(got[i].distance2, brute[i]);
      if (i > 0) {
        EXPECT_GE(got[i].distance2, got[i - 1].distance2);
      }
    }
  }
}

TEST_P(RTreeSweepTest, InsertedTreeMatchesBruteForce) {
  const auto pts = RandomPoints(GetParam(), 35);
  RTree tree;
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert({Rect::OfPoint(pts[i]), static_cast<int64_t>(i)});
  }
  EXPECT_EQ(tree.size(), pts.size());
  Rng rng(36);
  for (int q = 0; q < 10; ++q) {
    const double x0 = rng.Uniform(0, 900), y0 = rng.Uniform(0, 900);
    const Rect query(x0, y0, x0 + rng.Uniform(50, 400),
                     y0 + rng.Uniform(50, 400));
    auto got = tree.RangeQuery(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(pts, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeSweepTest,
                         ::testing::Values(1, 2, 15, 16, 17, 100, 1000, 5000));

TEST(RTreeTest, NearestStreamEnumeratesAllInOrder) {
  const auto pts = RandomPoints(500, 37);
  const RTree tree = RTree::BulkLoadPoints(pts);
  RTree::NearestStream stream(tree, {500, 500});
  RTree::Neighbor nb;
  double prev = -1.0;
  size_t count = 0;
  while (stream.Next(&nb)) {
    EXPECT_GE(nb.distance2, prev);
    prev = nb.distance2;
    ++count;
  }
  EXPECT_EQ(count, pts.size());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  const RTree small = RTree::BulkLoadPoints(RandomPoints(10, 38));
  const RTree large = RTree::BulkLoadPoints(RandomPoints(5000, 39));
  EXPECT_EQ(small.height(), 1);
  EXPECT_LE(large.height(), 5);
}

TEST(RTreeTest, DuplicatePointsAllReported) {
  std::vector<Point> pts(10, Point{1, 1});
  const RTree tree = RTree::BulkLoadPoints(pts);
  EXPECT_EQ(tree.RangeQuery(Rect(0, 0, 2, 2)).size(), 10u);
  EXPECT_EQ(tree.Nearest({1, 1}, 10).size(), 10u);
}

TEST(RTreeTest, ValidateHoldsAfterBulkLoadAndInserts) {
  const auto pts = RandomPoints(800, 61);
  const RTree bulk = RTree::BulkLoadPoints(pts);
  EXPECT_TRUE(bulk.Validate());
  RTree incremental;
  for (size_t i = 0; i < pts.size(); ++i) {
    incremental.Insert({Rect::OfPoint(pts[i]), static_cast<int64_t>(i)});
  }
  EXPECT_TRUE(incremental.Validate());
}

TEST(RTreeTest, RemoveDeletesExactEntryOnly) {
  const auto pts = RandomPoints(50, 62);
  RTree tree = RTree::BulkLoadPoints(pts);
  // Wrong id at an existing box: not removed.
  EXPECT_FALSE(tree.Remove({Rect::OfPoint(pts[0]), 999}));
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.Remove({Rect::OfPoint(pts[0]), 0}));
  EXPECT_EQ(tree.size(), 49u);
  EXPECT_FALSE(tree.Remove({Rect::OfPoint(pts[0]), 0}));  // already gone
  EXPECT_TRUE(tree.Validate());
  const auto hits = tree.RangeQuery(Rect::OfPoint(pts[0]));
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 0) == hits.end());
}

TEST(RTreeTest, RemoveAllEntriesLeavesEmptyValidTree) {
  const auto pts = RandomPoints(300, 63);
  RTree tree = RTree::BulkLoadPoints(pts);
  Rng rng(64);
  std::vector<size_t> order(pts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Shuffle removal order.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  for (const size_t i : order) {
    ASSERT_TRUE(
        tree.Remove({Rect::OfPoint(pts[i]), static_cast<int64_t>(i)}));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Validate());
  EXPECT_TRUE(tree.RangeQuery(Rect(0, 0, 1000, 1000)).empty());
}

TEST(RTreeTest, InterleavedInsertRemoveStaysConsistent) {
  RTree tree;
  Rng rng(65);
  std::vector<std::pair<Point, int64_t>> live;
  int64_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextDouble() < 0.6) {
      const Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      tree.Insert({Rect::OfPoint(p), next_id});
      live.emplace_back(p, next_id);
      ++next_id;
    } else {
      const size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(
          tree.Remove({Rect::OfPoint(live[pick].first), live[pick].second}));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_TRUE(tree.Validate());
  // Every live entry is findable.
  for (const auto& [p, id] : live) {
    const auto hits = tree.RangeQuery(Rect::OfPoint(p));
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), id) != hits.end());
  }
}

TEST(RTreeTest, RectEntriesRangeQuery) {
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 10.0;
    entries.push_back({Rect(x, 0, x + 15.0, 10.0), i});  // overlapping boxes
  }
  const RTree tree = RTree::BulkLoad(std::move(entries));
  // Query touching boxes 0..3 (x in [25, 35]).
  auto got = tree.RangeQuery(Rect(25, 2, 35, 8));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace movd
