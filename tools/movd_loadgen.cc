// movd_loadgen — closed-loop load generator for movd_serve.
//
//   movd_loadgen --socket=/tmp/movd.sock [--clients=4] [--duration_s=5]
//       [--requests=0] [--dataset=synthetic] [--dataset_layers=3]
//       [--algo=rrb] [--k=1] [--epsilon=1e-3] [--deadline_ms=0]
//       [--threads=1] [--cache=1] [--seed=1] [--check=1]
//       [--mix=solve:8,skyline:1,insert:2,delete:1]
//       [--world=10000] [--min_dist=0] [--require_cache_hits] [--shutdown]
//
// Spawns `--clients` connections; each runs a closed loop (send one SOLVE,
// wait for the answer, repeat) for `--duration_s` seconds (or `--requests`
// requests each, whichever first), drawing layer subsets of
// [0, --dataset_layers) from a seeded deterministic pattern pool so
// concurrent clients overlap on the same cached artifacts. Reports
// throughput, latency percentiles and the server's cache statistics, and
// (with --check, default on) verifies that every response for the same
// (verb, layers, algo, k, snapshot version) pattern is byte-identical —
// the serving determinism contract. Keying the check by the "version"
// field of each response makes it sound under concurrent mutation:
// queries pin an immutable snapshot, so two answers may differ only when
// their versions differ.
//
// --mix=verb:weight,... turns on mixed-workload mode: each request draws
// its verb from the weighted pool. The vocabulary is derived from the
// serve protocol's verb registry (every non-control verb, lower-cased),
// so a verb added to the registry is immediately mixable here. Query
// verbs interleave the query-algebra shapes with plain MOLQ solves
// against the same cached artifacts; the mutation verbs (insert, delete)
// exercise live updates: each INSERT places a deterministic
// client-unique point on a fresh grid cell (never colliding with dataset
// objects or other clients), and each DELETE pops that client's own most
// recent insert (falling back to an INSERT while the stack is empty), so
// deletions always target points the dataset really holds. The report
// grows a per-verb latency histogram. CONSTRAIN requests use a centered
// box covering half of [0, --world)^2 as the boundary; DIVERSE uses --k
// and --min_dist (default world/100); WHATIF sweeps two fixed weight
// vectors per layer pattern. All shapes are deterministic, so --check
// applies to every query verb (mutations are excluded: their responses
// are intentionally one-of-a-kind).
//
// Exit status is non-zero on connection failures, protocol errors,
// determinism mismatches, or (with --require_cache_hits) a cache that
// never hit. DEADLINE_EXCEEDED responses are counted but are not failures
// when --deadline_ms is set (they are the expected outcome of a tight
// budget), and OVERLOADED responses are counted but never failures (they
// are the admission controller doing its job; see DESIGN.md §14).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace movd;

/// One verb the mixed-workload mode can draw: a registry row plus its
/// lower-cased --mix spelling.
struct MixVerb {
  const VerbDescriptor* desc;
  std::string lower;
};

/// The --mix vocabulary, derived from the serve protocol's verb registry:
/// every non-control verb, in registry order. Index 0 is SOLVE (the
/// registry lists it first), which is also the default single-verb mix.
std::vector<MixVerb> MixableVerbs() {
  std::vector<MixVerb> verbs;
  for (const VerbDescriptor& d : VerbRegistry()) {
    if ((d.caps & kCapControl) != 0) continue;
    MixVerb v;
    v.desc = &d;
    v.lower = d.name;
    std::transform(v.lower.begin(), v.lower.end(), v.lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    verbs.push_back(std::move(v));
  }
  return verbs;
}

std::string JoinVerbNames(const std::vector<MixVerb>& verbs) {
  std::string out;
  for (const MixVerb& v : verbs) {
    if (!out.empty()) out += "|";
    out += v.lower;
  }
  return out;
}

struct ClientStats {
  uint64_t requests = 0;
  uint64_t errors = 0;             ///< ERR responses other than the two below
  uint64_t deadline_exceeded = 0;  ///< ERR ... DEADLINE_EXCEEDED responses
  uint64_t overloaded = 0;         ///< ERR ... OVERLOADED (admission shed)
  uint64_t mutations_ok = 0;       ///< OK responses to INSERT/DELETE
  bool connection_ok = true;
  std::vector<double> latencies_ms;
  /// Mixed-workload mode: latencies split per request verb (indexed like
  /// the MixableVerbs() vector).
  std::vector<std::vector<double>> verb_latencies_ms;
};

std::mutex g_check_mu;
std::map<std::string, std::string> g_first_answer;  // pattern -> answers json
std::atomic<uint64_t> g_mismatches{0};

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// The "answers": [...] (or, for WHATIF, "sweeps": [...]) slice of an OK
/// body — everything that must be deterministic (cache_hit, version and
/// seconds legitimately vary per request; version is compared separately
/// via the check key).
std::string AnswersSlice(const std::string& ok_line) {
  size_t begin = ok_line.find("\"answers\": ");
  if (begin == std::string::npos) begin = ok_line.find("\"sweeps\": ");
  const size_t end = ok_line.rfind(", \"cache_hit\"");
  if (begin == std::string::npos || end == std::string::npos || end <= begin) {
    return ok_line;  // unexpected shape: compare the whole line
  }
  return ok_line.substr(begin, end - begin);
}

/// The "version" field of an OK response body, or 0 when absent. Both
/// query and mutation responses carry it (protocol v2).
uint64_t ResponseVersion(const std::string& ok_line) {
  const char kNeedle[] = "\"version\": ";
  const size_t pos = ok_line.find(kNeedle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(ok_line.c_str() + pos + sizeof(kNeedle) - 1, nullptr,
                       10);
}

/// Deterministic pattern pool: every non-empty subset of [0, layers),
/// capped at 31 patterns for wide datasets.
std::vector<std::string> PatternPool(int layers) {
  std::vector<std::string> pool;
  const uint32_t masks = layers >= 31 ? 0x7fffffffu
                                      : ((1u << layers) - 1u);
  for (uint32_t mask = 1; mask <= masks && pool.size() < 31; ++mask) {
    std::string layers_arg;
    for (int i = 0; i < layers; ++i) {
      if ((mask & (1u << i)) == 0) continue;
      if (!layers_arg.empty()) layers_arg += ",";
      layers_arg += std::to_string(i);
    }
    pool.push_back(layers_arg);
  }
  return pool;
}

struct LoadConfig {
  std::string socket;
  std::string dataset;
  std::string algo;
  int64_t k = 1;
  double epsilon = 1e-3;
  double deadline_ms = 0.0;
  int64_t threads = 1;
  bool cache = true;
  double duration_s = 5.0;
  uint64_t requests_cap = 0;  // 0 = duration only
  uint64_t seed = 1;
  bool check = true;
  int dataset_layers = 3;
  double world = 10000.0;
  std::vector<std::string> patterns;
  /// Mixed-workload mode: the registry-derived verb pool with per-verb
  /// draw weights (all on verbs[0] == solve when --mix is absent).
  std::vector<MixVerb> verbs;
  std::vector<int> mix_weights;
  int mix_total = 1;
  double min_dist = 0.0;
  std::string boundary_spec;  ///< CONSTRAIN boundary= polygon
};

/// Parses "--mix=solve:8,skyline:1,..." into per-verb weights over the
/// registry-derived pool. Unlisted verbs get weight 0; at least one
/// weight must be positive.
bool ParseMix(const std::string& spec, const std::vector<MixVerb>& verbs,
              std::vector<int>* weights) {
  weights->assign(verbs.size(), 0);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = entry.substr(0, colon);
    const int weight = std::atoi(entry.c_str() + colon + 1);
    if (weight <= 0) return false;
    int verb = -1;
    for (size_t v = 0; v < verbs.size(); ++v) {
      if (name == verbs[v].lower) verb = static_cast<int>(v);
    }
    if (verb < 0) return false;
    (*weights)[static_cast<size_t>(verb)] += weight;
  }
  for (const int w : *weights) {
    if (w > 0) return true;
  }
  return false;
}

/// Two fixed WHATIF weight vectors for a `layer_count`-layer pattern: the
/// identity sweep and an alternating 1.5/0.5 scaling — deterministic, so
/// --check can compare responses across clients.
std::string SweepSpec(int layer_count) {
  std::string identity, skewed;
  for (int i = 0; i < layer_count; ++i) {
    if (i > 0) {
      identity += ",";
      skewed += ",";
    }
    identity += "1";
    skewed += (i % 2 == 0) ? "1.5" : "0.5";
  }
  return identity + "|" + skewed;
}

/// One mutation site. INSERT sends these coordinates; the matching DELETE
/// re-sends the exact same formatted text, so the server parses
/// bit-identical doubles and the deletion finds the inserted object.
struct MutationSite {
  int layer = 0;
  double x = 0.0;
  double y = 0.0;
};

/// A deterministic, globally unique insertion point for mutation number
/// `seq` of client `client`: cell (u mod P, u div P) of a P×P grid over
/// [0, world)^2, with u = client * 2^20 + seq injective across the run.
/// Grid-cell centers never collide with each other, and (being coarse
/// odd fractions of world) never with the continuous pseudo-random
/// dataset coordinates, so every INSERT adds a genuinely new site and
/// DELETE removes exactly what this client added.
MutationSite MakeMutationSite(int client, uint64_t seq, int layers,
                              double world) {
  static const uint64_t kGrid = 99991;  // prime; kGrid^2 >> any run length
  const uint64_t u = (static_cast<uint64_t>(client) << 20) + seq;
  MutationSite site;
  site.layer = static_cast<int>(seq % static_cast<uint64_t>(layers));
  site.x = world * ((static_cast<double>(u % kGrid) + 0.5) /
                    static_cast<double>(kGrid));
  site.y = world * ((static_cast<double>((u / kGrid) % kGrid) + 0.5) /
                    static_cast<double>(kGrid));
  return site;
}

/// One request line (without the trailing newline) for the verb at
/// `verb_index` against the given layer pattern (query verbs) or mutation
/// site (INSERT/DELETE). Which keys a verb gets follows its registry
/// row's allowed_args mask, so this stays in lockstep with the protocol:
/// a key the registry does not allow is never sent.
std::string BuildRequestLine(const LoadConfig& cfg, size_t verb_index,
                             int client, uint64_t n,
                             const std::string& layers,
                             const MutationSite& site) {
  const VerbDescriptor& desc = *cfg.verbs[verb_index].desc;
  std::string line = desc.name;
  char buf[160];
  std::snprintf(buf, sizeof(buf), " id=c%d-%llu dataset=%s", client,
                static_cast<unsigned long long>(n), cfg.dataset.c_str());
  line += buf;
  if ((desc.caps & kCapMutation) != 0) {
    std::snprintf(buf, sizeof(buf), " layer=%d x=%.17g y=%.17g", site.layer,
                  site.x, site.y);
    line += buf;
    return line;
  }
  if ((desc.allowed_args & kArgLayers) != 0) {
    line += " layers=" + layers;
  }
  if ((desc.allowed_args & kArgAlgo) != 0) {
    line += " algo=" + cfg.algo;
  }
  if ((desc.allowed_args & kArgK) != 0) {
    std::snprintf(buf, sizeof(buf), " k=%lld", static_cast<long long>(cfg.k));
    line += buf;
  }
  if ((desc.allowed_args & kArgMinDist) != 0) {
    std::snprintf(buf, sizeof(buf), " min_dist=%g", cfg.min_dist);
    line += buf;
  }
  if ((desc.allowed_args & kArgBoundary) != 0) {
    line += " boundary=" + cfg.boundary_spec;
  }
  if ((desc.allowed_args & kArgSweep) != 0) {
    const int layer_count =
        1 + static_cast<int>(std::count(layers.begin(), layers.end(), ','));
    line += " sweep=" + SweepSpec(layer_count);
  }
  std::snprintf(buf, sizeof(buf), " epsilon=%g threads=%lld cache=%d",
                cfg.epsilon, static_cast<long long>(cfg.threads),
                cfg.cache ? 1 : 0);
  line += buf;
  if (cfg.deadline_ms > 0.0 && (desc.allowed_args & kArgDeadlineMs) != 0) {
    std::snprintf(buf, sizeof(buf), " deadline_ms=%g", cfg.deadline_ms);
    line += buf;
  }
  return line;
}

void RunClient(const LoadConfig& cfg, int index, ClientStats* stats) {
  stats->verb_latencies_ms.resize(cfg.verbs.size());
  const int fd = ConnectUnix(cfg.socket);
  if (fd < 0) {
    stats->connection_ok = false;
    return;
  }
  Rng rng(cfg.seed * 1000003u + static_cast<uint64_t>(index));
  Stopwatch clock;
  std::string buffer;
  uint64_t n = 0;
  uint64_t mutation_seq = 0;
  // Points this client inserted and has not yet deleted. DELETE pops the
  // most recent one, so it always names a live object.
  std::vector<MutationSite> inserted;
  while (clock.ElapsedSeconds() < cfg.duration_s &&
         (cfg.requests_cap == 0 || n < cfg.requests_cap)) {
    const std::string& layers =
        cfg.patterns[rng.NextBelow(cfg.patterns.size())];
    // Draw the verb from the weighted mix (always verbs[0] == solve
    // without --mix).
    size_t verb = 0;
    int draw = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(cfg.mix_total)));
    for (size_t v = 0; v < cfg.verbs.size(); ++v) {
      draw -= cfg.mix_weights[v];
      if (draw < 0) {
        verb = v;
        break;
      }
    }
    const VerbDescriptor* desc = cfg.verbs[verb].desc;
    MutationSite site;
    bool pops_stack = false;
    if ((desc->caps & kCapMutation) != 0) {
      if (desc->mutation == MutationKind::kDelete && !inserted.empty()) {
        site = inserted.back();
        pops_stack = true;
      } else {
        // DELETE with nothing of ours to delete degrades to INSERT so the
        // request is still a valid mutation.
        if (desc->mutation == MutationKind::kDelete) {
          for (size_t v = 0; v < cfg.verbs.size(); ++v) {
            if ((cfg.verbs[v].desc->caps & kCapMutation) != 0 &&
                cfg.verbs[v].desc->mutation == MutationKind::kInsert) {
              verb = v;
              desc = cfg.verbs[v].desc;
              break;
            }
          }
        }
        site = MakeMutationSite(index, mutation_seq++, cfg.dataset_layers,
                                cfg.world);
      }
    }
    const std::string line =
        BuildRequestLine(cfg, verb, index, n, layers, site) + "\n";
    Stopwatch latency;
    std::string response;
    if (!SendAll(fd, line) || !RecvLine(fd, &buffer, &response)) {
      stats->connection_ok = false;
      break;
    }
    const double ms = latency.ElapsedMillis();
    stats->latencies_ms.push_back(ms);
    stats->verb_latencies_ms[verb].push_back(ms);
    ++stats->requests;
    ++n;
    if (response.rfind("OK ", 0) == 0) {
      if ((desc->caps & kCapMutation) != 0) {
        ++stats->mutations_ok;
        if (pops_stack) {
          inserted.pop_back();
        } else {
          inserted.push_back(site);
        }
      } else if (cfg.check) {
        // Key the determinism check by the snapshot version the response
        // was computed against: answers may differ across versions (the
        // data changed) but must be byte-identical within one.
        const std::string pattern =
            cfg.verbs[verb].lower + "/" + layers + "/" + cfg.algo + "/k" +
            std::to_string(cfg.k) + "/v" +
            std::to_string(ResponseVersion(response));
        const std::string answers = AnswersSlice(response);
        std::lock_guard<std::mutex> lock(g_check_mu);
        const auto it = g_first_answer.find(pattern);
        if (it == g_first_answer.end()) {
          g_first_answer.emplace(pattern, answers);
        } else if (it->second != answers) {
          g_mismatches.fetch_add(1);
        }
      }
    } else if (response.find(" DEADLINE_EXCEEDED") != std::string::npos) {
      ++stats->deadline_exceeded;
    } else if (response.find(" OVERLOADED") != std::string::npos) {
      ++stats->overloaded;
    } else {
      ++stats->errors;
      if (stats->errors == 1) {
        std::fprintf(stderr, "movd_loadgen: server error: %s\n",
                     response.c_str());
      }
    }
  }
  ::close(fd);
}

/// Pulls one numeric field out of the STATS json ("\"name\": <digits>").
uint64_t JsonCounter(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  const char* p = json.c_str() + pos + needle.size();
  while (*p == ' ') ++p;
  return std::strtoull(p, nullptr, 10);
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  LoadConfig cfg;
  cfg.socket = flags.GetString("socket", "");
  cfg.dataset = flags.GetString("dataset", "synthetic");
  cfg.algo = flags.GetString("algo", "rrb");
  cfg.k = flags.GetInt("k", 1);
  cfg.epsilon = flags.GetDouble("epsilon", 1e-3);
  cfg.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  cfg.threads = flags.GetInt("threads", 1);
  cfg.cache = flags.GetBool("cache", true);
  cfg.duration_s = flags.GetDouble("duration_s", 5.0);
  cfg.requests_cap = static_cast<uint64_t>(flags.GetInt("requests", 0));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.check = flags.GetBool("check", true);
  cfg.dataset_layers = static_cast<int>(flags.GetInt("dataset_layers", 3));
  cfg.patterns = PatternPool(cfg.dataset_layers);
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const bool require_hits = flags.GetBool("require_cache_hits", false);
  const bool shutdown_server = flags.GetBool("shutdown", false);
  cfg.world = flags.GetDouble("world", 10000.0);
  cfg.min_dist = flags.GetDouble("min_dist", cfg.world / 100.0);
  cfg.verbs = MixableVerbs();
  cfg.mix_weights.assign(cfg.verbs.size(), 0);
  cfg.mix_weights[0] = 1;  // registry row 0 is SOLVE
  const bool mixed = flags.Has("mix");
  if (mixed &&
      !ParseMix(flags.GetString("mix", ""), cfg.verbs, &cfg.mix_weights)) {
    std::fprintf(stderr,
                 "movd_loadgen: bad --mix (want verb:weight,... with verbs "
                 "%s)\n",
                 JoinVerbNames(cfg.verbs).c_str());
    return 2;
  }
  cfg.mix_total = 0;
  for (const int w : cfg.mix_weights) cfg.mix_total += w;
  if (mixed && cfg.algo == "ssc") {
    // The registry knows which verbs need a MOVD artifact and therefore
    // reject algo=ssc; an ssc mix may only weight the others.
    for (size_t v = 0; v < cfg.verbs.size(); ++v) {
      if (cfg.mix_weights[v] > 0 &&
          (cfg.verbs[v].desc->caps & kCapRequiresOverlay) != 0) {
        std::fprintf(stderr,
                     "movd_loadgen: --algo=ssc cannot mix in %s (the "
                     "query-algebra verbs reject ssc)\n",
                     cfg.verbs[v].lower.c_str());
        return 2;
      }
    }
  }
  // CONSTRAIN boundary: the centered box covering half of [0, world)^2.
  {
    char spec[128];
    std::snprintf(spec, sizeof(spec), "%g,%g;%g,%g;%g,%g;%g,%g",
                  0.25 * cfg.world, 0.25 * cfg.world, 0.75 * cfg.world,
                  0.25 * cfg.world, 0.75 * cfg.world, 0.75 * cfg.world,
                  0.25 * cfg.world, 0.75 * cfg.world);
    cfg.boundary_spec = spec;
  }
  flags.WarnUnused(stderr);
  if (cfg.socket.empty()) {
    std::fprintf(stderr, "movd_loadgen: --socket=PATH is required\n");
    return 2;
  }
  if (clients < 1 || cfg.patterns.empty()) {
    std::fprintf(stderr, "movd_loadgen: bad --clients/--dataset_layers\n");
    return 2;
  }

  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(RunClient, std::cref(cfg), i, &stats[i]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  uint64_t requests = 0, errors = 0, deadlines = 0, overloaded = 0;
  uint64_t mutations_ok = 0;
  bool connections_ok = true;
  std::vector<double> latencies;
  std::vector<std::vector<double>> verb_latencies(cfg.verbs.size());
  for (const ClientStats& s : stats) {
    requests += s.requests;
    errors += s.errors;
    deadlines += s.deadline_exceeded;
    overloaded += s.overloaded;
    mutations_ok += s.mutations_ok;
    connections_ok = connections_ok && s.connection_ok;
    latencies.insert(latencies.end(), s.latencies_ms.begin(),
                     s.latencies_ms.end());
    for (size_t v = 0; v < s.verb_latencies_ms.size(); ++v) {
      verb_latencies[v].insert(verb_latencies[v].end(),
                               s.verb_latencies_ms[v].begin(),
                               s.verb_latencies_ms[v].end());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&latencies](double p) {
    if (latencies.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        (p / 100.0) * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };

  // One control connection for STATS (+ optional SHUTDOWN).
  uint64_t cache_hits = 0, cache_misses = 0;
  uint64_t server_shed = 0, server_mutations = 0;
  bool stats_ok = false;
  const int fd = ConnectUnix(cfg.socket);
  if (fd >= 0) {
    std::string buffer, response;
    if (SendAll(fd, "STATS\n") && RecvLine(fd, &buffer, &response) &&
        response.rfind("OK ", 0) == 0) {
      cache_hits = JsonCounter(response, "cache_hits");
      cache_misses = JsonCounter(response, "cache_misses");
      server_shed = JsonCounter(response, "shed");
      server_mutations = JsonCounter(response, "mutations");
      stats_ok = true;
    }
    if (shutdown_server) {
      SendAll(fd, "SHUTDOWN\n");
      if (RecvLine(fd, &buffer, &response)) {
        // Response drained so the server finishes the write cleanly.
      }
    }
    ::close(fd);
  } else {
    connections_ok = false;
  }

  Table table({"metric", "value"});
  table.AddRow({"clients", std::to_string(clients)});
  table.AddRow({"wall seconds", Table::Fmt(elapsed, 3)});
  table.AddRow({"requests", std::to_string(requests)});
  table.AddRow({"errors", std::to_string(errors)});
  table.AddRow({"deadline_exceeded", std::to_string(deadlines)});
  table.AddRow({"overloaded (shed)", std::to_string(overloaded)});
  table.AddRow({"mutations applied", std::to_string(mutations_ok)});
  table.AddRow(
      {"throughput req/s",
       Table::Fmt(elapsed > 0.0 ? static_cast<double>(requests) / elapsed
                                : 0.0,
                  1)});
  table.AddRow({"p50 latency ms", Table::Fmt(percentile(50), 3)});
  table.AddRow({"p99 latency ms", Table::Fmt(percentile(99), 3)});
  table.AddRow({"determinism mismatches",
                std::to_string(g_mismatches.load())});
  table.AddRow({"server cache hits",
                stats_ok ? std::to_string(cache_hits) : "(unavailable)"});
  table.AddRow({"server cache misses",
                stats_ok ? std::to_string(cache_misses) : "(unavailable)"});
  table.AddRow({"server shed",
                stats_ok ? std::to_string(server_shed) : "(unavailable)"});
  table.AddRow({"server mutations",
                stats_ok ? std::to_string(server_mutations)
                         : "(unavailable)"});
  table.Print(stdout);

  if (mixed) {
    // Per-verb latency histogram: power-of-two millisecond buckets plus
    // percentiles, one row per verb that appeared in the mix.
    static const double kBucketsMs[] = {0.5, 1.0, 2.0, 4.0, 8.0,
                                        16.0, 32.0, 64.0};
    const size_t buckets = sizeof(kBucketsMs) / sizeof(kBucketsMs[0]);
    Table hist({"verb", "count", "<0.5ms", "<1", "<2", "<4", "<8", "<16",
                "<32", "<64", ">=64", "p50 ms", "p99 ms"});
    for (size_t v = 0; v < cfg.verbs.size(); ++v) {
      std::vector<double>& lat = verb_latencies[v];
      if (lat.empty()) continue;
      std::sort(lat.begin(), lat.end());
      std::vector<uint64_t> counts(buckets + 1, 0);
      for (const double ms : lat) {
        size_t b = 0;
        while (b < buckets && ms >= kBucketsMs[b]) ++b;
        ++counts[b];
      }
      std::vector<std::string> row = {cfg.verbs[v].lower,
                                      std::to_string(lat.size())};
      for (const uint64_t c : counts) row.push_back(std::to_string(c));
      const auto verb_pct = [&lat](double p) {
        const size_t idx = static_cast<size_t>(
            (p / 100.0) * static_cast<double>(lat.size() - 1));
        return lat[idx];
      };
      row.push_back(Table::Fmt(verb_pct(50), 3));
      row.push_back(Table::Fmt(verb_pct(99), 3));
      hist.AddRow(row);
    }
    hist.Print(stdout);
  }

  if (!connections_ok) {
    std::fprintf(stderr, "movd_loadgen: connection failures\n");
    return 1;
  }
  if (errors > 0 || g_mismatches.load() > 0) return 1;
  if (cfg.deadline_ms <= 0.0 && deadlines > 0) return 1;
  if (require_hits && (!stats_ok || cache_hits == 0)) {
    std::fprintf(stderr, "movd_loadgen: expected cache hits, saw none\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
