// movd_loadgen — closed-loop load generator for movd_serve.
//
//   movd_loadgen --socket=/tmp/movd.sock [--clients=4] [--duration_s=5]
//       [--requests=0] [--dataset=synthetic] [--dataset_layers=3]
//       [--algo=rrb] [--k=1] [--epsilon=1e-3] [--deadline_ms=0]
//       [--threads=1] [--cache=1] [--seed=1] [--check=1]
//       [--mix=solve:8,skyline:1,diverse:1,constrain:1,whatif:1]
//       [--world=10000] [--min_dist=0] [--require_cache_hits] [--shutdown]
//
// Spawns `--clients` connections; each runs a closed loop (send one SOLVE,
// wait for the answer, repeat) for `--duration_s` seconds (or `--requests`
// requests each, whichever first), drawing layer subsets of
// [0, --dataset_layers) from a seeded deterministic pattern pool so
// concurrent clients overlap on the same cached artifacts. Reports
// throughput, latency percentiles and the server's cache statistics, and
// (with --check, default on) verifies that every response for the same
// (verb, layers, algo, k) pattern is byte-identical — the serving
// determinism contract.
//
// --mix=verb:weight,... turns on mixed-workload mode: each request draws
// its verb (solve, skyline, diverse, constrain, whatif) from the weighted
// pool, interleaving the query-algebra shapes with plain MOLQ solves
// against the same cached artifacts, and the report grows a per-verb
// latency histogram. CONSTRAIN requests use a centered box covering half
// of [0, --world)^2 as the boundary; DIVERSE uses --k and --min_dist
// (default world/100); WHATIF sweeps two fixed weight vectors per layer
// pattern. All shapes are deterministic, so --check applies to every verb.
//
// Exit status is non-zero on connection failures, protocol errors,
// determinism mismatches, or (with --require_cache_hits) a cache that
// never hit. DEADLINE_EXCEEDED responses are counted but are not failures
// when --deadline_ms is set (they are the expected outcome of a tight
// budget).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace movd;

/// The request verbs mixed-workload mode can draw from.
enum Verb { kSolve = 0, kSkyline, kDiverse, kConstrain, kWhatIf, kNumVerbs };
const char* const kVerbNames[kNumVerbs] = {"solve", "skyline", "diverse",
                                           "constrain", "whatif"};

struct ClientStats {
  uint64_t requests = 0;
  uint64_t errors = 0;             ///< ERR responses other than deadline
  uint64_t deadline_exceeded = 0;  ///< ERR ... DEADLINE_EXCEEDED responses
  bool connection_ok = true;
  std::vector<double> latencies_ms;
  /// Mixed-workload mode: latencies split per request verb.
  std::vector<double> verb_latencies_ms[kNumVerbs];
};

std::mutex g_check_mu;
std::map<std::string, std::string> g_first_answer;  // pattern -> answers json
std::atomic<uint64_t> g_mismatches{0};

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// The "answers": [...] (or, for WHATIF, "sweeps": [...]) slice of an OK
/// body — everything that must be deterministic (cache_hit and seconds
/// legitimately vary per request).
std::string AnswersSlice(const std::string& ok_line) {
  size_t begin = ok_line.find("\"answers\": ");
  if (begin == std::string::npos) begin = ok_line.find("\"sweeps\": ");
  const size_t end = ok_line.rfind(", \"cache_hit\"");
  if (begin == std::string::npos || end == std::string::npos || end <= begin) {
    return ok_line;  // unexpected shape: compare the whole line
  }
  return ok_line.substr(begin, end - begin);
}

/// Deterministic pattern pool: every non-empty subset of [0, layers),
/// capped at 31 patterns for wide datasets.
std::vector<std::string> PatternPool(int layers) {
  std::vector<std::string> pool;
  const uint32_t masks = layers >= 31 ? 0x7fffffffu
                                      : ((1u << layers) - 1u);
  for (uint32_t mask = 1; mask <= masks && pool.size() < 31; ++mask) {
    std::string layers_arg;
    for (int i = 0; i < layers; ++i) {
      if ((mask & (1u << i)) == 0) continue;
      if (!layers_arg.empty()) layers_arg += ",";
      layers_arg += std::to_string(i);
    }
    pool.push_back(layers_arg);
  }
  return pool;
}

struct LoadConfig {
  std::string socket;
  std::string dataset;
  std::string algo;
  int64_t k = 1;
  double epsilon = 1e-3;
  double deadline_ms = 0.0;
  int64_t threads = 1;
  bool cache = true;
  double duration_s = 5.0;
  uint64_t requests_cap = 0;  // 0 = duration only
  uint64_t seed = 1;
  bool check = true;
  std::vector<std::string> patterns;
  /// Mixed-workload mode: per-verb draw weights (all on kSolve when --mix
  /// is absent) and the derived request ingredients.
  int mix_weights[kNumVerbs] = {1, 0, 0, 0, 0};
  int mix_total = 1;
  double min_dist = 0.0;
  std::string boundary_spec;  ///< CONSTRAIN boundary= polygon
};

/// Parses "--mix=solve:8,skyline:1,..." into per-verb weights. Unlisted
/// verbs get weight 0; at least one weight must be positive.
bool ParseMix(const std::string& spec, int weights[kNumVerbs]) {
  for (int v = 0; v < kNumVerbs; ++v) weights[v] = 0;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = entry.substr(0, colon);
    const int weight = std::atoi(entry.c_str() + colon + 1);
    if (weight <= 0) return false;
    int verb = -1;
    for (int v = 0; v < kNumVerbs; ++v) {
      if (name == kVerbNames[v]) verb = v;
    }
    if (verb < 0) return false;
    weights[verb] += weight;
  }
  for (int v = 0; v < kNumVerbs; ++v) {
    if (weights[v] > 0) return true;
  }
  return false;
}

/// Two fixed WHATIF weight vectors for a `layer_count`-layer pattern: the
/// identity sweep and an alternating 1.5/0.5 scaling — deterministic, so
/// --check can compare responses across clients.
std::string SweepSpec(int layer_count) {
  std::string identity, skewed;
  for (int i = 0; i < layer_count; ++i) {
    if (i > 0) {
      identity += ",";
      skewed += ",";
    }
    identity += "1";
    skewed += (i % 2 == 0) ? "1.5" : "0.5";
  }
  return identity + "|" + skewed;
}

/// One request line (without the trailing newline) for `verb` against the
/// given layer pattern. The common keys mirror the plain-SOLVE path; verb
/// specific keys follow the protocol's requirements (DIVERSE needs
/// k/min_dist, CONSTRAIN takes no algo/k, WHATIF needs sweep).
std::string BuildRequestLine(const LoadConfig& cfg, Verb verb, int client,
                             uint64_t n, const std::string& layers) {
  std::string line = verb == kSolve     ? "SOLVE"
                     : verb == kSkyline ? "SKYLINE"
                     : verb == kDiverse ? "DIVERSE"
                     : verb == kConstrain ? "CONSTRAIN"
                                          : "WHATIF";
  char buf[128];
  std::snprintf(buf, sizeof(buf), " id=c%d-%llu dataset=%s layers=%s", client,
                static_cast<unsigned long long>(n), cfg.dataset.c_str(),
                layers.c_str());
  line += buf;
  if (verb != kConstrain) {
    line += " algo=" + cfg.algo;
  }
  if (verb == kSolve || verb == kDiverse || verb == kWhatIf) {
    std::snprintf(buf, sizeof(buf), " k=%lld",
                  static_cast<long long>(cfg.k));
    line += buf;
  }
  if (verb == kDiverse) {
    std::snprintf(buf, sizeof(buf), " min_dist=%g", cfg.min_dist);
    line += buf;
  }
  if (verb == kConstrain) {
    line += " boundary=" + cfg.boundary_spec;
  }
  if (verb == kWhatIf) {
    const int layer_count =
        1 + static_cast<int>(std::count(layers.begin(), layers.end(), ','));
    line += " sweep=" + SweepSpec(layer_count);
  }
  std::snprintf(buf, sizeof(buf), " epsilon=%g threads=%lld cache=%d",
                cfg.epsilon, static_cast<long long>(cfg.threads),
                cfg.cache ? 1 : 0);
  line += buf;
  if (cfg.deadline_ms > 0.0) {
    std::snprintf(buf, sizeof(buf), " deadline_ms=%g", cfg.deadline_ms);
    line += buf;
  }
  return line;
}

void RunClient(const LoadConfig& cfg, int index, ClientStats* stats) {
  const int fd = ConnectUnix(cfg.socket);
  if (fd < 0) {
    stats->connection_ok = false;
    return;
  }
  Rng rng(cfg.seed * 1000003u + static_cast<uint64_t>(index));
  Stopwatch clock;
  std::string buffer;
  uint64_t n = 0;
  while (clock.ElapsedSeconds() < cfg.duration_s &&
         (cfg.requests_cap == 0 || n < cfg.requests_cap)) {
    const std::string& layers =
        cfg.patterns[rng.NextBelow(cfg.patterns.size())];
    // Draw the verb from the weighted mix (always kSolve without --mix).
    Verb verb = kSolve;
    int draw = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(cfg.mix_total)));
    for (int v = 0; v < kNumVerbs; ++v) {
      draw -= cfg.mix_weights[v];
      if (draw < 0) {
        verb = static_cast<Verb>(v);
        break;
      }
    }
    const std::string pattern = std::string(kVerbNames[verb]) + "/" + layers +
                                "/" + cfg.algo + "/k" + std::to_string(cfg.k);
    const std::string line =
        BuildRequestLine(cfg, verb, index, n, layers) + "\n";
    Stopwatch latency;
    std::string response;
    if (!SendAll(fd, line) || !RecvLine(fd, &buffer, &response)) {
      stats->connection_ok = false;
      break;
    }
    const double ms = latency.ElapsedMillis();
    stats->latencies_ms.push_back(ms);
    stats->verb_latencies_ms[verb].push_back(ms);
    ++stats->requests;
    ++n;
    if (response.rfind("OK ", 0) == 0) {
      if (cfg.check) {
        const std::string answers = AnswersSlice(response);
        std::lock_guard<std::mutex> lock(g_check_mu);
        const auto it = g_first_answer.find(pattern);
        if (it == g_first_answer.end()) {
          g_first_answer.emplace(pattern, answers);
        } else if (it->second != answers) {
          g_mismatches.fetch_add(1);
        }
      }
    } else if (response.find(" DEADLINE_EXCEEDED") != std::string::npos) {
      ++stats->deadline_exceeded;
    } else {
      ++stats->errors;
      if (stats->errors == 1) {
        std::fprintf(stderr, "movd_loadgen: server error: %s\n",
                     response.c_str());
      }
    }
  }
  ::close(fd);
}

/// Pulls one numeric field out of the STATS json ("\"name\":<digits>").
uint64_t JsonCounter(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  LoadConfig cfg;
  cfg.socket = flags.GetString("socket", "");
  cfg.dataset = flags.GetString("dataset", "synthetic");
  cfg.algo = flags.GetString("algo", "rrb");
  cfg.k = flags.GetInt("k", 1);
  cfg.epsilon = flags.GetDouble("epsilon", 1e-3);
  cfg.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  cfg.threads = flags.GetInt("threads", 1);
  cfg.cache = flags.GetBool("cache", true);
  cfg.duration_s = flags.GetDouble("duration_s", 5.0);
  cfg.requests_cap = static_cast<uint64_t>(flags.GetInt("requests", 0));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.check = flags.GetBool("check", true);
  cfg.patterns =
      PatternPool(static_cast<int>(flags.GetInt("dataset_layers", 3)));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const bool require_hits = flags.GetBool("require_cache_hits", false);
  const bool shutdown_server = flags.GetBool("shutdown", false);
  const double world = flags.GetDouble("world", 10000.0);
  cfg.min_dist = flags.GetDouble("min_dist", world / 100.0);
  const bool mixed = flags.Has("mix");
  if (mixed && !ParseMix(flags.GetString("mix", ""), cfg.mix_weights)) {
    std::fprintf(stderr,
                 "movd_loadgen: bad --mix (want verb:weight,... with verbs "
                 "solve|skyline|diverse|constrain|whatif)\n");
    return 2;
  }
  cfg.mix_total = 0;
  for (int v = 0; v < kNumVerbs; ++v) cfg.mix_total += cfg.mix_weights[v];
  if (mixed && cfg.algo == "ssc" &&
      cfg.mix_weights[kSolve] != cfg.mix_total) {
    std::fprintf(stderr,
                 "movd_loadgen: --algo=ssc only supports a solve-only mix "
                 "(the query-algebra verbs reject ssc)\n");
    return 2;
  }
  // CONSTRAIN boundary: the centered box covering half of [0, world)^2.
  {
    char spec[128];
    std::snprintf(spec, sizeof(spec), "%g,%g;%g,%g;%g,%g;%g,%g", 0.25 * world,
                  0.25 * world, 0.75 * world, 0.25 * world, 0.75 * world,
                  0.75 * world, 0.25 * world, 0.75 * world);
    cfg.boundary_spec = spec;
  }
  flags.WarnUnused(stderr);
  if (cfg.socket.empty()) {
    std::fprintf(stderr, "movd_loadgen: --socket=PATH is required\n");
    return 2;
  }
  if (clients < 1 || cfg.patterns.empty()) {
    std::fprintf(stderr, "movd_loadgen: bad --clients/--dataset_layers\n");
    return 2;
  }

  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(RunClient, std::cref(cfg), i, &stats[i]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  uint64_t requests = 0, errors = 0, deadlines = 0;
  bool connections_ok = true;
  std::vector<double> latencies;
  std::vector<double> verb_latencies[kNumVerbs];
  for (const ClientStats& s : stats) {
    requests += s.requests;
    errors += s.errors;
    deadlines += s.deadline_exceeded;
    connections_ok = connections_ok && s.connection_ok;
    latencies.insert(latencies.end(), s.latencies_ms.begin(),
                     s.latencies_ms.end());
    for (int v = 0; v < kNumVerbs; ++v) {
      verb_latencies[v].insert(verb_latencies[v].end(),
                               s.verb_latencies_ms[v].begin(),
                               s.verb_latencies_ms[v].end());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&latencies](double p) {
    if (latencies.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        (p / 100.0) * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };

  // One control connection for STATS (+ optional SHUTDOWN).
  uint64_t cache_hits = 0, cache_misses = 0;
  bool stats_ok = false;
  const int fd = ConnectUnix(cfg.socket);
  if (fd >= 0) {
    std::string buffer, response;
    if (SendAll(fd, "STATS\n") && RecvLine(fd, &buffer, &response) &&
        response.rfind("OK ", 0) == 0) {
      cache_hits = JsonCounter(response, "cache_hits");
      cache_misses = JsonCounter(response, "cache_misses");
      stats_ok = true;
    }
    if (shutdown_server) {
      SendAll(fd, "SHUTDOWN\n");
      if (RecvLine(fd, &buffer, &response)) {
        // Response drained so the server finishes the write cleanly.
      }
    }
    ::close(fd);
  } else {
    connections_ok = false;
  }

  Table table({"metric", "value"});
  table.AddRow({"clients", std::to_string(clients)});
  table.AddRow({"wall seconds", Table::Fmt(elapsed, 3)});
  table.AddRow({"requests", std::to_string(requests)});
  table.AddRow({"errors", std::to_string(errors)});
  table.AddRow({"deadline_exceeded", std::to_string(deadlines)});
  table.AddRow(
      {"throughput req/s",
       Table::Fmt(elapsed > 0.0 ? static_cast<double>(requests) / elapsed
                                : 0.0,
                  1)});
  table.AddRow({"p50 latency ms", Table::Fmt(percentile(50), 3)});
  table.AddRow({"p99 latency ms", Table::Fmt(percentile(99), 3)});
  table.AddRow({"determinism mismatches",
                std::to_string(g_mismatches.load())});
  table.AddRow({"server cache hits",
                stats_ok ? std::to_string(cache_hits) : "(unavailable)"});
  table.AddRow({"server cache misses",
                stats_ok ? std::to_string(cache_misses) : "(unavailable)"});
  table.Print(stdout);

  if (mixed) {
    // Per-verb latency histogram: power-of-two millisecond buckets plus
    // percentiles, one row per verb that appeared in the mix.
    static const double kBucketsMs[] = {0.5, 1.0, 2.0, 4.0, 8.0,
                                        16.0, 32.0, 64.0};
    const size_t buckets = sizeof(kBucketsMs) / sizeof(kBucketsMs[0]);
    Table hist({"verb", "count", "<0.5ms", "<1", "<2", "<4", "<8", "<16",
                "<32", "<64", ">=64", "p50 ms", "p99 ms"});
    for (int v = 0; v < kNumVerbs; ++v) {
      std::vector<double>& lat = verb_latencies[v];
      if (lat.empty()) continue;
      std::sort(lat.begin(), lat.end());
      std::vector<uint64_t> counts(buckets + 1, 0);
      for (const double ms : lat) {
        size_t b = 0;
        while (b < buckets && ms >= kBucketsMs[b]) ++b;
        ++counts[b];
      }
      std::vector<std::string> row = {kVerbNames[v],
                                      std::to_string(lat.size())};
      for (const uint64_t c : counts) row.push_back(std::to_string(c));
      const auto verb_pct = [&lat](double p) {
        const size_t idx = static_cast<size_t>(
            (p / 100.0) * static_cast<double>(lat.size() - 1));
        return lat[idx];
      };
      row.push_back(Table::Fmt(verb_pct(50), 3));
      row.push_back(Table::Fmt(verb_pct(99), 3));
      hist.AddRow(row);
    }
    hist.Print(stdout);
  }

  if (!connections_ok) {
    std::fprintf(stderr, "movd_loadgen: connection failures\n");
    return 1;
  }
  if (errors > 0 || g_mismatches.load() > 0) return 1;
  if (cfg.deadline_ms <= 0.0 && deadlines > 0) return 1;
  if (require_hits && (!stats_ok || cache_hits == 0)) {
    std::fprintf(stderr, "movd_loadgen: expected cache hits, saw none\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
