// movd_loadgen — closed-loop load generator for movd_serve.
//
//   movd_loadgen --socket=/tmp/movd.sock [--clients=4] [--duration_s=5]
//       [--requests=0] [--dataset=synthetic] [--dataset_layers=3]
//       [--algo=rrb] [--k=1] [--epsilon=1e-3] [--deadline_ms=0]
//       [--threads=1] [--cache=1] [--seed=1] [--check=1]
//       [--mix=solve:8,skyline:1,insert:2,delete:1]
//       [--world=10000] [--min_dist=0] [--require_cache_hits] [--shutdown]
//
// Spawns `--clients` connections; each runs a closed loop (send one SOLVE,
// wait for the answer, repeat) for `--duration_s` seconds (or `--requests`
// requests each, whichever first), drawing layer subsets of
// [0, --dataset_layers) from a seeded deterministic pattern pool so
// concurrent clients overlap on the same cached artifacts. Reports
// throughput, latency percentiles and the server's cache statistics, and
// (with --check, default on) verifies that every response for the same
// (verb, layers, algo, k, snapshot version) pattern is byte-identical —
// the serving determinism contract. Keying the check by the "version"
// field of each response makes it sound under concurrent mutation:
// queries pin an immutable snapshot, so two answers may differ only when
// their versions differ.
//
// Requests ride the typed client library (serve/client.h): each loop
// iteration builds an EngineRequest — the same typed form an in-process
// Engine caller would build — and ServeClient::Call puts it on the wire
// and parses the response back into a structured ClientResponse. No
// protocol strings are assembled here; the wire format lives entirely in
// serve/protocol.cc, on both sides of the socket.
//
// --mix=verb:weight,... turns on mixed-workload mode: each request draws
// its verb from the weighted pool. The vocabulary is derived from the
// serve protocol's verb registry (every non-control verb, lower-cased),
// so a verb added to the registry is immediately mixable here. Query
// verbs interleave the query-algebra shapes with plain MOLQ solves
// against the same cached artifacts; the mutation verbs (insert, delete)
// exercise live updates: each INSERT places a deterministic
// client-unique point on a fresh grid cell (never colliding with dataset
// objects or other clients), and each DELETE pops that client's own most
// recent insert (falling back to an INSERT while the stack is empty), so
// deletions always target points the dataset really holds. The report
// grows a per-verb latency histogram. CONSTRAIN requests use a centered
// box covering half of [0, --world)^2 as the boundary; DIVERSE uses --k
// and --min_dist (default world/100); WHATIF sweeps two fixed weight
// vectors per layer pattern. All shapes are deterministic, so --check
// applies to every query verb (mutations are excluded: their responses
// are intentionally one-of-a-kind).
//
// Against a sharded server (movd_serve --shards=N) the final report adds
// a per-shard table — one row per replica with its request and cache
// counters, read from the "per_shard" array of the merged STATS body —
// so cache-warmth skew across shard regions is visible at a glance.
//
// Exit status is non-zero on connection failures, protocol errors,
// determinism mismatches, or (with --require_cache_hits) a cache that
// never hit. DEADLINE_EXCEEDED responses are counted but are not failures
// when --deadline_ms is set (they are the expected outcome of a tight
// budget), and OVERLOADED responses are counted but never failures (they
// are the admission controller doing its job; see DESIGN.md §14).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace movd;

/// One verb the mixed-workload mode can draw: a registry row plus its
/// lower-cased --mix spelling.
struct MixVerb {
  const VerbDescriptor* desc;
  std::string lower;
};

/// The --mix vocabulary, derived from the serve protocol's verb registry:
/// every non-control verb, in registry order. Index 0 is SOLVE (the
/// registry lists it first), which is also the default single-verb mix.
std::vector<MixVerb> MixableVerbs() {
  std::vector<MixVerb> verbs;
  for (const VerbDescriptor& d : VerbRegistry()) {
    if ((d.caps & kCapControl) != 0) continue;
    MixVerb v;
    v.desc = &d;
    v.lower = d.name;
    std::transform(v.lower.begin(), v.lower.end(), v.lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    verbs.push_back(std::move(v));
  }
  return verbs;
}

std::string JoinVerbNames(const std::vector<MixVerb>& verbs) {
  std::string out;
  for (const MixVerb& v : verbs) {
    if (!out.empty()) out += "|";
    out += v.lower;
  }
  return out;
}

struct ClientStats {
  uint64_t requests = 0;
  uint64_t errors = 0;             ///< ERR responses other than the two below
  uint64_t deadline_exceeded = 0;  ///< ERR ... DEADLINE_EXCEEDED responses
  uint64_t overloaded = 0;         ///< ERR ... OVERLOADED (admission shed)
  uint64_t mutations_ok = 0;       ///< OK responses to INSERT/DELETE
  bool connection_ok = true;
  std::vector<double> latencies_ms;
  /// Mixed-workload mode: latencies split per request verb (indexed like
  /// the MixableVerbs() vector).
  std::vector<std::vector<double>> verb_latencies_ms;
};

std::mutex g_check_mu;
std::map<std::string, std::string> g_first_answer;  // pattern -> answers json
std::atomic<uint64_t> g_mismatches{0};

/// One layer subset: the ascending index list plus its "0,2" spelling
/// (the determinism-check map key component).
struct LayerPattern {
  std::string key;
  std::vector<int32_t> layers;
};

/// Deterministic pattern pool: every non-empty subset of [0, layers),
/// capped at 31 patterns for wide datasets.
std::vector<LayerPattern> PatternPool(int layers) {
  std::vector<LayerPattern> pool;
  const uint32_t masks = layers >= 31 ? 0x7fffffffu
                                      : ((1u << layers) - 1u);
  for (uint32_t mask = 1; mask <= masks && pool.size() < 31; ++mask) {
    LayerPattern pattern;
    for (int i = 0; i < layers; ++i) {
      if ((mask & (1u << i)) == 0) continue;
      if (!pattern.key.empty()) pattern.key += ",";
      pattern.key += std::to_string(i);
      pattern.layers.push_back(i);
    }
    pool.push_back(std::move(pattern));
  }
  return pool;
}

struct LoadConfig {
  std::string socket;
  std::string dataset;
  std::string algo;  ///< wire spelling, kept for the check-map key
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
  int64_t k = 1;
  double epsilon = 1e-3;
  double deadline_ms = 0.0;
  int64_t threads = 1;
  bool cache = true;
  double duration_s = 5.0;
  uint64_t requests_cap = 0;  // 0 = duration only
  uint64_t seed = 1;
  bool check = true;
  int dataset_layers = 3;
  double world = 10000.0;
  std::vector<LayerPattern> patterns;
  /// Mixed-workload mode: the registry-derived verb pool with per-verb
  /// draw weights (all on verbs[0] == solve when --mix is absent).
  std::vector<MixVerb> verbs;
  std::vector<int> mix_weights;
  int mix_total = 1;
  double min_dist = 0.0;
  QueryConstraint constraint;  ///< CONSTRAIN boundary polygon
};

/// Parses "--mix=solve:8,skyline:1,..." into per-verb weights over the
/// registry-derived pool. Unlisted verbs get weight 0; at least one
/// weight must be positive.
bool ParseMix(const std::string& spec, const std::vector<MixVerb>& verbs,
              std::vector<int>* weights) {
  weights->assign(verbs.size(), 0);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = entry.substr(0, colon);
    const int weight = std::atoi(entry.c_str() + colon + 1);
    if (weight <= 0) return false;
    int verb = -1;
    for (size_t v = 0; v < verbs.size(); ++v) {
      if (name == verbs[v].lower) verb = static_cast<int>(v);
    }
    if (verb < 0) return false;
    (*weights)[static_cast<size_t>(verb)] += weight;
  }
  for (const int w : *weights) {
    if (w > 0) return true;
  }
  return false;
}

/// Two fixed WHATIF weight vectors for a `layer_count`-layer pattern: the
/// identity sweep and an alternating 1.5/0.5 scaling — deterministic, so
/// --check can compare responses across clients.
std::vector<std::vector<double>> SweepVectors(size_t layer_count) {
  std::vector<double> identity(layer_count, 1.0);
  std::vector<double> skewed(layer_count);
  for (size_t i = 0; i < layer_count; ++i) {
    skewed[i] = (i % 2 == 0) ? 1.5 : 0.5;
  }
  return {std::move(identity), std::move(skewed)};
}

/// One mutation site. INSERT sends these coordinates; the matching DELETE
/// re-sends the exact same doubles (FormatRequestLine prints them with
/// round-trip precision), so the server parses bit-identical values and
/// the deletion finds the inserted object.
struct MutationSite {
  int layer = 0;
  double x = 0.0;
  double y = 0.0;
};

/// A deterministic, globally unique insertion point for mutation number
/// `seq` of client `client`: cell (u mod P, u div P) of a P×P grid over
/// [0, world)^2, with u = client * 2^20 + seq injective across the run.
/// Grid-cell centers never collide with each other, and (being coarse
/// odd fractions of world) never with the continuous pseudo-random
/// dataset coordinates, so every INSERT adds a genuinely new site and
/// DELETE removes exactly what this client added.
MutationSite MakeMutationSite(int client, uint64_t seq, int layers,
                              double world) {
  static const uint64_t kGrid = 99991;  // prime; kGrid^2 >> any run length
  const uint64_t u = (static_cast<uint64_t>(client) << 20) + seq;
  MutationSite site;
  site.layer = static_cast<int>(seq % static_cast<uint64_t>(layers));
  site.x = world * ((static_cast<double>(u % kGrid) + 0.5) /
                    static_cast<double>(kGrid));
  site.y = world * ((static_cast<double>((u / kGrid) % kGrid) + 0.5) /
                    static_cast<double>(kGrid));
  return site;
}

/// One typed request for the verb at `verb_index` against the given layer
/// pattern (query verbs) or mutation site (INSERT/DELETE). Which envelope
/// fields a verb gets follows its registry row's allowed_args mask, so
/// this stays in lockstep with the protocol: a field the registry does
/// not allow is left at its default and never reaches the wire.
EngineRequest BuildRequest(const LoadConfig& cfg, size_t verb_index,
                           int client, uint64_t n,
                           const LayerPattern& pattern,
                           const MutationSite& site) {
  const VerbDescriptor& desc = *cfg.verbs[verb_index].desc;
  EngineRequest request;
  char id[64];
  std::snprintf(id, sizeof(id), "c%d-%llu", client,
                static_cast<unsigned long long>(n));
  request.id = id;
  request.dataset = cfg.dataset;
  if ((desc.caps & kCapMutation) != 0) {
    SiteMutation mutation;
    mutation.kind = desc.mutation;
    mutation.layer = site.layer;
    mutation.location = Point{site.x, site.y};
    request.op = mutation;
    return request;
  }
  if ((desc.allowed_args & kArgLayers) != 0) {
    request.layers = pattern.layers;
  }
  request.epsilon = cfg.epsilon;
  request.exec.threads = static_cast<int>(cfg.threads);
  request.use_cache = cfg.cache;
  if (cfg.deadline_ms > 0.0 && (desc.allowed_args & kArgDeadlineMs) != 0) {
    request.deadline_ms = cfg.deadline_ms;
  }
  const size_t topk = static_cast<size_t>(cfg.k);
  switch (desc.kind) {
    case ServeQueryKind::kMolq:
      request.op = SolveSpec{cfg.algorithm, topk};
      break;
    case ServeQueryKind::kSkyline:
      request.op = SkylineSpec{cfg.algorithm};
      break;
    case ServeQueryKind::kDiverse:
      request.op = DiverseSpec{cfg.algorithm, topk, cfg.min_dist};
      break;
    case ServeQueryKind::kConstrained:
      request.op = ConstrainSpec{cfg.constraint};
      break;
    case ServeQueryKind::kWhatIf:
      request.op = WhatIfSpec{cfg.algorithm, topk,
                              SweepVectors(pattern.layers.size())};
      break;
  }
  return request;
}

void RunClient(const LoadConfig& cfg, int index, ClientStats* stats) {
  stats->verb_latencies_ms.resize(cfg.verbs.size());
  ServeClient client;
  if (!client.Connect(cfg.socket).ok()) {
    stats->connection_ok = false;
    return;
  }
  Rng rng(cfg.seed * 1000003u + static_cast<uint64_t>(index));
  Stopwatch clock;
  uint64_t n = 0;
  uint64_t mutation_seq = 0;
  // Points this client inserted and has not yet deleted. DELETE pops the
  // most recent one, so it always names a live object.
  std::vector<MutationSite> inserted;
  while (clock.ElapsedSeconds() < cfg.duration_s &&
         (cfg.requests_cap == 0 || n < cfg.requests_cap)) {
    const LayerPattern& pattern =
        cfg.patterns[rng.NextBelow(cfg.patterns.size())];
    // Draw the verb from the weighted mix (always verbs[0] == solve
    // without --mix).
    size_t verb = 0;
    int draw = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(cfg.mix_total)));
    for (size_t v = 0; v < cfg.verbs.size(); ++v) {
      draw -= cfg.mix_weights[v];
      if (draw < 0) {
        verb = v;
        break;
      }
    }
    const VerbDescriptor* desc = cfg.verbs[verb].desc;
    MutationSite site;
    bool pops_stack = false;
    if ((desc->caps & kCapMutation) != 0) {
      if (desc->mutation == MutationKind::kDelete && !inserted.empty()) {
        site = inserted.back();
        pops_stack = true;
      } else {
        // DELETE with nothing of ours to delete degrades to INSERT so the
        // request is still a valid mutation.
        if (desc->mutation == MutationKind::kDelete) {
          for (size_t v = 0; v < cfg.verbs.size(); ++v) {
            if ((cfg.verbs[v].desc->caps & kCapMutation) != 0 &&
                cfg.verbs[v].desc->mutation == MutationKind::kInsert) {
              verb = v;
              desc = cfg.verbs[v].desc;
              break;
            }
          }
        }
        site = MakeMutationSite(index, mutation_seq++, cfg.dataset_layers,
                                cfg.world);
      }
    }
    const EngineRequest request =
        BuildRequest(cfg, verb, index, n, pattern, site);
    Stopwatch latency;
    ClientResponse response;
    if (!client.Call(request, &response).ok()) {
      stats->connection_ok = false;
      break;
    }
    const double ms = latency.ElapsedMillis();
    stats->latencies_ms.push_back(ms);
    stats->verb_latencies_ms[verb].push_back(ms);
    ++stats->requests;
    ++n;
    if (response.status.ok()) {
      if ((desc->caps & kCapMutation) != 0) {
        ++stats->mutations_ok;
        if (pops_stack) {
          inserted.pop_back();
        } else {
          inserted.push_back(site);
        }
      } else if (cfg.check) {
        // Key the determinism check by the snapshot version the response
        // was computed against: answers may differ across versions (the
        // data changed) but must be byte-identical within one.
        const std::string key =
            cfg.verbs[verb].lower + "/" + pattern.key + "/" + cfg.algo +
            "/k" + std::to_string(cfg.k) + "/v" +
            std::to_string(response.version);
        std::lock_guard<std::mutex> lock(g_check_mu);
        const auto it = g_first_answer.find(key);
        if (it == g_first_answer.end()) {
          g_first_answer.emplace(key, response.answers);
        } else if (it->second != response.answers) {
          g_mismatches.fetch_add(1);
        }
      }
    } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats->deadline_exceeded;
    } else if (response.status.code() == StatusCode::kOverloaded) {
      ++stats->overloaded;
    } else {
      ++stats->errors;
      if (stats->errors == 1) {
        std::fprintf(stderr, "movd_loadgen: server error (id %s): %s\n",
                     response.id.c_str(),
                     response.status.ToString().c_str());
      }
    }
  }
}

/// Pulls one numeric field out of the STATS json ("\"name\": <digits>").
uint64_t JsonCounter(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  const char* p = json.c_str() + pos + needle.size();
  while (*p == ' ') ++p;
  return std::strtoull(p, nullptr, 10);
}

/// The elements of the STATS body's "per_shard" array (present when the
/// server runs sharded), split by brace depth. Empty when absent.
std::vector<std::string> PerShardBodies(const std::string& json) {
  std::vector<std::string> bodies;
  const size_t key = json.find("\"per_shard\":");
  if (key == std::string::npos) return bodies;
  int depth = 0;
  size_t begin = std::string::npos;
  for (size_t pos = json.find('[', key) + 1; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (c == '{') {
      if (depth == 0) begin = pos;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && begin != std::string::npos) {
        bodies.push_back(json.substr(begin, pos - begin + 1));
        begin = std::string::npos;
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return bodies;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  LoadConfig cfg;
  cfg.socket = flags.GetString("socket", "");
  cfg.dataset = flags.GetString("dataset", "synthetic");
  cfg.algo = flags.GetString("algo", "rrb");
  cfg.k = flags.GetInt("k", 1);
  cfg.epsilon = flags.GetDouble("epsilon", 1e-3);
  cfg.deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  cfg.threads = flags.GetInt("threads", 1);
  cfg.cache = flags.GetBool("cache", true);
  cfg.duration_s = flags.GetDouble("duration_s", 5.0);
  cfg.requests_cap = static_cast<uint64_t>(flags.GetInt("requests", 0));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.check = flags.GetBool("check", true);
  cfg.dataset_layers = static_cast<int>(flags.GetInt("dataset_layers", 3));
  cfg.patterns = PatternPool(cfg.dataset_layers);
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const bool require_hits = flags.GetBool("require_cache_hits", false);
  const bool shutdown_server = flags.GetBool("shutdown", false);
  cfg.world = flags.GetDouble("world", 10000.0);
  cfg.min_dist = flags.GetDouble("min_dist", cfg.world / 100.0);
  if (cfg.algo == "ssc") {
    cfg.algorithm = MolqAlgorithm::kSsc;
  } else if (cfg.algo == "rrb") {
    cfg.algorithm = MolqAlgorithm::kRrb;
  } else if (cfg.algo == "mbrb") {
    cfg.algorithm = MolqAlgorithm::kMbrb;
  } else {
    std::fprintf(stderr, "movd_loadgen: bad --algo (want ssc|rrb|mbrb)\n");
    return 2;
  }
  cfg.verbs = MixableVerbs();
  cfg.mix_weights.assign(cfg.verbs.size(), 0);
  cfg.mix_weights[0] = 1;  // registry row 0 is SOLVE
  const bool mixed = flags.Has("mix");
  if (mixed &&
      !ParseMix(flags.GetString("mix", ""), cfg.verbs, &cfg.mix_weights)) {
    std::fprintf(stderr,
                 "movd_loadgen: bad --mix (want verb:weight,... with verbs "
                 "%s)\n",
                 JoinVerbNames(cfg.verbs).c_str());
    return 2;
  }
  cfg.mix_total = 0;
  for (const int w : cfg.mix_weights) cfg.mix_total += w;
  if (mixed && cfg.algorithm == MolqAlgorithm::kSsc) {
    // The registry knows which verbs need a MOVD artifact and therefore
    // reject algo=ssc; an ssc mix may only weight the others.
    for (size_t v = 0; v < cfg.verbs.size(); ++v) {
      if (cfg.mix_weights[v] > 0 &&
          (cfg.verbs[v].desc->caps & kCapRequiresOverlay) != 0) {
        std::fprintf(stderr,
                     "movd_loadgen: --algo=ssc cannot mix in %s (the "
                     "query-algebra verbs reject ssc)\n",
                     cfg.verbs[v].lower.c_str());
        return 2;
      }
    }
  }
  // CONSTRAIN boundary: the centered box covering half of [0, world)^2.
  cfg.constraint.boundary = Polygon({{0.25 * cfg.world, 0.25 * cfg.world},
                                     {0.75 * cfg.world, 0.25 * cfg.world},
                                     {0.75 * cfg.world, 0.75 * cfg.world},
                                     {0.25 * cfg.world, 0.75 * cfg.world}});
  flags.WarnUnused(stderr);
  if (cfg.socket.empty()) {
    std::fprintf(stderr, "movd_loadgen: --socket=PATH is required\n");
    return 2;
  }
  if (clients < 1 || cfg.patterns.empty()) {
    std::fprintf(stderr, "movd_loadgen: bad --clients/--dataset_layers\n");
    return 2;
  }

  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(RunClient, std::cref(cfg), i, &stats[i]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  uint64_t requests = 0, errors = 0, deadlines = 0, overloaded = 0;
  uint64_t mutations_ok = 0;
  bool connections_ok = true;
  std::vector<double> latencies;
  std::vector<std::vector<double>> verb_latencies(cfg.verbs.size());
  for (const ClientStats& s : stats) {
    requests += s.requests;
    errors += s.errors;
    deadlines += s.deadline_exceeded;
    overloaded += s.overloaded;
    mutations_ok += s.mutations_ok;
    connections_ok = connections_ok && s.connection_ok;
    latencies.insert(latencies.end(), s.latencies_ms.begin(),
                     s.latencies_ms.end());
    for (size_t v = 0; v < s.verb_latencies_ms.size(); ++v) {
      verb_latencies[v].insert(verb_latencies[v].end(),
                               s.verb_latencies_ms[v].begin(),
                               s.verb_latencies_ms[v].end());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&latencies](double p) {
    if (latencies.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        (p / 100.0) * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };

  // One control connection for STATS (+ optional SHUTDOWN).
  uint64_t cache_hits = 0, cache_misses = 0;
  uint64_t server_shed = 0, server_mutations = 0;
  std::string stats_json;
  bool stats_ok = false;
  ServeClient control;
  if (control.Connect(cfg.socket).ok()) {
    if (control.Stats(&stats_json).ok()) {
      cache_hits = JsonCounter(stats_json, "cache_hits");
      cache_misses = JsonCounter(stats_json, "cache_misses");
      server_shed = JsonCounter(stats_json, "shed");
      server_mutations = JsonCounter(stats_json, "mutations");
      stats_ok = true;
    }
    if (shutdown_server) {
      // Shutdown drains the farewell line so the server finishes its
      // write cleanly; a dropped connection here is not a failure.
      (void)control.Shutdown();
    }
    control.Close();
  } else {
    connections_ok = false;
  }

  Table table({"metric", "value"});
  table.AddRow({"clients", std::to_string(clients)});
  table.AddRow({"wall seconds", Table::Fmt(elapsed, 3)});
  table.AddRow({"requests", std::to_string(requests)});
  table.AddRow({"errors", std::to_string(errors)});
  table.AddRow({"deadline_exceeded", std::to_string(deadlines)});
  table.AddRow({"overloaded (shed)", std::to_string(overloaded)});
  table.AddRow({"mutations applied", std::to_string(mutations_ok)});
  table.AddRow(
      {"throughput req/s",
       Table::Fmt(elapsed > 0.0 ? static_cast<double>(requests) / elapsed
                                : 0.0,
                  1)});
  table.AddRow({"p50 latency ms", Table::Fmt(percentile(50), 3)});
  table.AddRow({"p99 latency ms", Table::Fmt(percentile(99), 3)});
  table.AddRow({"determinism mismatches",
                std::to_string(g_mismatches.load())});
  table.AddRow({"server cache hits",
                stats_ok ? std::to_string(cache_hits) : "(unavailable)"});
  table.AddRow({"server cache misses",
                stats_ok ? std::to_string(cache_misses) : "(unavailable)"});
  table.AddRow({"server shed",
                stats_ok ? std::to_string(server_shed) : "(unavailable)"});
  table.AddRow({"server mutations",
                stats_ok ? std::to_string(server_mutations)
                         : "(unavailable)"});
  const uint64_t server_shards =
      stats_ok ? JsonCounter(stats_json, "shards") : 0;
  if (server_shards > 1) {
    table.AddRow({"server shards", std::to_string(server_shards)});
  }
  table.Print(stdout);

  // Sharded server: one row per replica, from the merged STATS body's
  // per_shard array, so cache-warmth skew across shard regions shows up.
  const std::vector<std::string> shard_bodies = PerShardBodies(stats_json);
  if (!shard_bodies.empty()) {
    Table shards({"shard", "requests", "ok", "mutations", "cache hits",
                  "cache misses", "shed"});
    for (size_t s = 0; s < shard_bodies.size(); ++s) {
      const std::string& body = shard_bodies[s];
      shards.AddRow({std::to_string(s),
                     std::to_string(JsonCounter(body, "requests")),
                     std::to_string(JsonCounter(body, "ok")),
                     std::to_string(JsonCounter(body, "mutations")),
                     std::to_string(JsonCounter(body, "cache_hits")),
                     std::to_string(JsonCounter(body, "cache_misses")),
                     std::to_string(JsonCounter(body, "shed"))});
    }
    shards.Print(stdout);
  }

  if (mixed) {
    // Per-verb latency histogram: power-of-two millisecond buckets plus
    // percentiles, one row per verb that appeared in the mix.
    static const double kBucketsMs[] = {0.5, 1.0, 2.0, 4.0, 8.0,
                                        16.0, 32.0, 64.0};
    const size_t buckets = sizeof(kBucketsMs) / sizeof(kBucketsMs[0]);
    Table hist({"verb", "count", "<0.5ms", "<1", "<2", "<4", "<8", "<16",
                "<32", "<64", ">=64", "p50 ms", "p99 ms"});
    for (size_t v = 0; v < cfg.verbs.size(); ++v) {
      std::vector<double>& lat = verb_latencies[v];
      if (lat.empty()) continue;
      std::sort(lat.begin(), lat.end());
      std::vector<uint64_t> counts(buckets + 1, 0);
      for (const double ms : lat) {
        size_t b = 0;
        while (b < buckets && ms >= kBucketsMs[b]) ++b;
        ++counts[b];
      }
      std::vector<std::string> row = {cfg.verbs[v].lower,
                                      std::to_string(lat.size())};
      for (const uint64_t c : counts) row.push_back(std::to_string(c));
      const auto verb_pct = [&lat](double p) {
        const size_t idx = static_cast<size_t>(
            (p / 100.0) * static_cast<double>(lat.size() - 1));
        return lat[idx];
      };
      row.push_back(Table::Fmt(verb_pct(50), 3));
      row.push_back(Table::Fmt(verb_pct(99), 3));
      hist.AddRow(row);
    }
    hist.Print(stdout);
  }

  if (!connections_ok) {
    std::fprintf(stderr, "movd_loadgen: connection failures\n");
    return 1;
  }
  if (errors > 0 || g_mismatches.load() > 0) return 1;
  if (cfg.deadline_ms <= 0.0 && deadlines > 0) return 1;
  if (require_hits && (!stats_ok || cache_hits == 0)) {
    std::fprintf(stderr, "movd_loadgen: expected cache hits, saw none\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
