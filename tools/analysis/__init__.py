"""Static-analysis checkers for the MOVD repo (DESIGN.md section 12).

Three checkers, each with its own CLI entry point and all registered as
ctest tests under the `analysis` label:

  lint_rules.py       The regex rule engine behind tools/lint_movd.py
                      (determinism/robustness conventions + the
                      stale-rejecting suppression allowlist).
  check_includes.py   Include-layering enforcement: every src/ module may
                      include only the modules below it in the documented
                      DAG, and the file-level include graph must be
                      acyclic.
  check_headers.py    Header self-containment: every src/ header compiles
                      as the first include of an otherwise empty TU.

test_analysis.py exercises each rule against positive/negative fixture
snippets (fixtures/), so rule regressions are caught like code regressions.
"""
