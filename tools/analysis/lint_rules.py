"""Rule engine for the MOVD repo lint (tools/lint_movd.py).

The rules and their rationale are documented in lint_movd.py's module
docstring and DESIGN.md section 7; this module holds the implementation so
the checkers are importable — by the lint CLI, by the fixture-driven unit
tests (test_analysis.py), and by any future aggregate driver.
"""


import argparse
import os
import re
import sys

SRC_EXTENSIONS = (".h", ".cc", ".cpp")

# float-eq: ==/!= against a floating-point literal. Integer literals (no
# decimal point / exponent) do not match, so `count != 0` stays legal.
FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+|\d+\.\d*[eE][-+]?\d+)[fL]?"
FLOAT_EQ_RE = re.compile(
    r"(?:[!=]=\s*%s)|(?:%s\s*[!=]=)" % (FLOAT_LITERAL, FLOAT_LITERAL))
FLOAT_EQ_EXEMPT_FILES = (
    "src/geom/predicates.h", "src/geom/predicates.cc",
    "src/geom/expansion.h", "src/geom/expansion.cc",
)
FLOAT_EQ_EXEMPT_CALLS = ("Orient2D(", "InCircle(")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;=]*>\s+(\w+)\s*[;({=]")
SORT_RE = re.compile(r"std::(?:stable_)?sort\s*\(")
ABORT_RE = re.compile(r"(?<![\w.])(?:std::)?(?:abort|exit)\s*\(")
TODO_RE = re.compile(r"//.*\b(TODO|FIXME|XXX|HACK)\b")
RAW_CHRONO_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock|Clock)\s*::\s*"
    r"now\s*\(")
# bench-printf: stdout writers. fprintf is only flagged when aimed at
# stdout; snprintf (buffer formatting) never matches.
BENCH_PRINTF_RE = re.compile(
    r"(?<![\w.])(?:std::)?(?:printf\s*\(|puts\s*\(|fprintf\s*\(\s*stdout\b)"
    r"|std::cout\b")

# weighted-direct: construction backends reachable only via the
# BuildWeightedCells dispatch. The dispatch and the backends' own homes are
# exempt (declaration + definition sites).
WEIGHTED_DIRECT_RE = re.compile(
    r"\b(?:ApproximateWeightedVoronoi|AdaptiveWeightedVoronoi)\s*\(")
WEIGHTED_DIRECT_EXEMPT_FILES = (
    "src/voronoi/weighted.h",
    "src/voronoi/weighted.cc",
    "src/voronoi/weighted_adaptive.cc",
)

# entry-check-msg: (file-suffix, function) pairs; the definition must call
# MOVD_CHECK_MSG within its first 15 lines.
ENTRY_POINTS = [
    ("src/core/molq.cc", "Movd BuildBasicMovd"),
    ("src/core/molq.cc", "MolqResult SolveMolq"),
    ("src/core/ssc.cc", "SscResult SolveSsc"),
    ("src/core/optimizer.cc", "OptimizerResult OptimizeMovd"),
    ("src/core/overlap.cc", "Movd OverlapAll"),
    ("src/fermat/fermat_weber.cc", "FermatWeberResult SolveFermatWeber"),
    ("src/fermat/batch.cc", "BatchResult SolveFermatWeberBatch"),
    ("src/voronoi/weighted.cc",
     "std::vector<WeightedCellApprox> ApproximateWeightedVoronoi"),
    ("src/voronoi/weighted.cc",
     "std::vector<WeightedCellApprox> BuildWeightedCells"),
    ("src/voronoi/weighted_adaptive.cc",
     "std::vector<WeightedCellApprox> AdaptiveWeightedVoronoi"),
    ("src/geom/gridcontour.cc", "std::vector<Polygon> ExtractOuterContours"),
    ("src/query/candidates.cc", "StatusCode EnumerateCandidates"),
    ("src/query/skyline.cc", "SkylineResult SkylineFromMovd"),
    ("src/query/diversify.cc", "DiverseTopKResult DiverseTopKFromMovd"),
    ("src/query/constrained.cc",
     "ConstrainedMolqResult ConstrainedFromClippedMovd"),
    ("src/query/constrained.cc",
     "ConstrainedMolqResult ConstrainedMolqFromMovd"),
    ("src/query/whatif.cc", "WhatIfSweepResult WhatIfSweepFromMovd"),
]


class Finding:
    def __init__(self, rule, path, line_no, line, message):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s\n    %s" % (
            self.path, self.line_no, self.rule, self.message,
            self.line.strip())


def load_allowlist(root):
    entries = []
    path = os.path.join(root, "tools", "lint_allowlist.txt")
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split("|")
            if len(parts) != 3:
                print("lint_allowlist.txt: malformed entry: %s" % raw.strip(),
                      file=sys.stderr)
                sys.exit(2)
            entries.append(tuple(p.strip() for p in parts))
    return entries


def allowed(finding, allowlist, used):
    for idx, (rule, path_suffix, substring) in enumerate(allowlist):
        if (finding.rule == rule and finding.path.endswith(path_suffix)
                and substring in finding.line):
            used.add(idx)
            return True
    return False


def strip_comments_and_strings(line, in_block_comment):
    """Returns (code-only text, still-in-block-comment). Keeps columns by
    replacing stripped characters with spaces, so regex positions hold."""
    out = []
    i, n = 0, len(line)
    state = "block" if in_block_comment else "code"
    quote = ""
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "block":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 2
                state = "code"
                continue
            out.append(" ")
            i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                out.append(c)
                i += 1
                state = "code"
                continue
            out.append(" ")
            i += 1
        else:
            if c == "/" and nxt == "/":
                out.append(" " * (n - i))
                break
            if c == "/" and nxt == "*":
                out.append("  ")
                i += 2
                state = "block"
                continue
            if c in "\"'":
                out.append(c)
                quote = c
                i += 1
                state = "string"
                continue
            out.append(c)
            i += 1
    return "".join(out), state == "block"


# The analysis fixtures are deliberately-violating snippets (each rule's
# positive test case); linting them would flag every one.
SKIP_DIR_SUFFIXES = (os.path.join("tools", "analysis", "fixtures"),)


def iter_source_files(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, files in os.walk(base):
            if any(dirpath.endswith(sfx) for sfx in SKIP_DIR_SUFFIXES):
                continue
            for name in sorted(files):
                if name.endswith(SRC_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def lint_file(root, rel_path, findings):
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    code_lines = []
    in_block = False
    for line in raw_lines:
        code, in_block = strip_comments_and_strings(line, in_block)
        code_lines.append(code)

    in_src = rel_path.startswith("src/")
    in_bench = rel_path.startswith("bench/")

    if in_bench:
        for i, code in enumerate(code_lines, 1):
            if BENCH_PRINTF_RE.search(code):
                findings.append(Finding(
                    "bench-printf", rel_path, i, raw_lines[i - 1],
                    "stdout printing in bench/; report through the harness "
                    "(bench_lib) so tables and BENCH_*.json stay in sync"))

    # weighted-direct runs everywhere the linter looks, not just src/: a
    # test or tool bypassing the dispatch is exactly the drift the rule
    # exists to stop.
    if not any(rel_path.endswith(p) for p in WEIGHTED_DIRECT_EXEMPT_FILES):
        for i, code in enumerate(code_lines, 1):
            if WEIGHTED_DIRECT_RE.search(code):
                findings.append(Finding(
                    "weighted-direct", rel_path, i, raw_lines[i - 1],
                    "direct weighted-Voronoi backend call; route through "
                    "BuildWeightedCells (WeightedOptions dispatch)"))

    # untracked-todo runs on raw lines (markers live in comments).
    for i, line in enumerate(raw_lines, 1):
        m = TODO_RE.search(line)
        if m and "DESIGN.md" not in line:
            findings.append(Finding(
                "untracked-todo", rel_path, i, line,
                "%s marker without a DESIGN.md reference" % m.group(1)))

    if not in_src:
        return

    float_eq_exempt = any(rel_path.endswith(p) for p in FLOAT_EQ_EXEMPT_FILES)
    unordered_names = set()
    for code in code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    for i, code in enumerate(code_lines, 1):
        raw = raw_lines[i - 1]

        if not float_eq_exempt and FLOAT_EQ_RE.search(code):
            if not any(call in code for call in FLOAT_EQ_EXEMPT_CALLS):
                findings.append(Finding(
                    "float-eq", rel_path, i, raw,
                    "floating-point ==/!= outside the exact-predicate "
                    "kernels"))

        for name in unordered_names:
            if re.search(r"for\s*\([^)]*:\s*%s\s*\)" % re.escape(name), code) \
                    or re.search(r"\b%s\s*\.\s*begin\s*\(" % re.escape(name),
                                 code):
                findings.append(Finding(
                    "unordered-iter", rel_path, i, raw,
                    "iteration over unordered container '%s' "
                    "(hash order is unspecified)" % name))

        if SORT_RE.search(code):
            findings.append(Finding(
                "float-sort", rel_path, i, raw,
                "sort call site must be vetted for deterministic ordering "
                "(allowlist it with a justification once reviewed)"))

        if ABORT_RE.search(code) and not rel_path.endswith("src/util/check.h"):
            findings.append(Finding(
                "naked-abort", rel_path, i, raw,
                "abort()/exit() outside src/util/check.h; use MOVD_CHECK"))

        if RAW_CHRONO_RE.search(code):
            findings.append(Finding(
                "raw-chrono", rel_path, i, raw,
                "raw chrono clock read; time through util/stopwatch.h "
                "(or util/cancel.h for deadlines)"))


def lint_entry_points(root, findings):
    for rel_path, signature in ENTRY_POINTS:
        path = os.path.join(root, rel_path)
        if not os.path.exists(path):
            findings.append(Finding(
                "entry-check-msg", rel_path, 0, "",
                "file with required entry point '%s' not found" % signature))
            continue
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        def_line = None
        for i, line in enumerate(lines):
            if line.startswith(signature):
                def_line = i
                break
        if def_line is None:
            findings.append(Finding(
                "entry-check-msg", rel_path, 0, "",
                "definition of '%s' not found" % signature))
            continue
        window = "\n".join(lines[def_line:def_line + 15])
        if "MOVD_CHECK_MSG(" not in window:
            findings.append(Finding(
                "entry-check-msg", rel_path, def_line + 1, lines[def_line],
                "'%s' must validate arguments with MOVD_CHECK_MSG near the "
                "top of its definition" % signature))



def run_lint(root):
    """Lints the repo rooted at `root`.

    Returns (kept, stale, suppressed): unsuppressed findings, stale
    allowlist entries, and the number of findings the allowlist absorbed.
    """
    findings = []
    for rel_path in iter_source_files(
            root, ["src", "tests", "bench", "tools", "examples"]):
        lint_file(root, rel_path, findings)
    lint_entry_points(root, findings)

    allowlist = load_allowlist(root)
    used = set()
    kept = [f for f in findings if not allowed(f, allowlist, used)]
    stale = [e for i, e in enumerate(allowlist) if i not in used]
    return kept, stale, len(findings) - len(kept)
