#!/usr/bin/env python3
"""Include-layering enforcement for src/ (DESIGN.md section 12).

The codebase is layered as a DAG of modules (the subdirectories of src/).
Each module may include its own headers plus the headers of the modules
listed for it in ALLOWED_DEPS — its transitive foundation. Anything else
is an upward or sideways include and fails the check, which is what keeps
"audit validates core's structures" from quietly becoming "audit and core
include each other" again (the cycle PR 7 broke by extracting src/model).

Two checks run:

  layering   Every `#include "mod/..."` in src/<m>/ has mod == m or
             mod in ALLOWED_DEPS[m]. tests/, bench/, tools/ and examples/
             sit above every module and may include anything.
  cycles     The file-level include graph over src/ is acyclic (a module
             DAG can still hide a header cycle inside one module).

The module DAG, bottom to top (see the diagram in DESIGN.md section 12):

  util
   ├─ geom, trace
   │   ├─ index, viz, fermat, bench_lib
   │   └─ voronoi
   │       └─ model
   │           └─ audit
   │               └─ core   (also uses fermat)
   │                   ├─ network, data, storage
   │                   ├─ query (also uses fermat)
   │                   └─ serve (also uses query, storage, audit)
   └─ (tests, bench, tools, examples ride on top of everything)

Usage: python3 tools/analysis/check_includes.py [--root=REPO_ROOT]
Exits 1 on any violation, 0 when clean.
"""

import argparse
import os
import re
import sys

SRC_EXTENSIONS = (".h", ".cc", ".cpp")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Module -> modules it may include (its direct foundation). Keep this list
# tight: every edge here is a dependency reviewers no longer get to
# question, so additions belong in the PR that needs them, with the DAG
# diagram in DESIGN.md section 12 updated to match.
ALLOWED_DEPS = {
    "util": set(),
    "geom": {"util"},
    "trace": {"util"},
    "index": {"geom", "util"},
    "viz": {"geom", "util"},
    "bench_lib": {"trace", "util"},
    "fermat": {"geom", "trace", "util"},
    "voronoi": {"geom", "index", "trace", "util"},
    "model": {"geom", "util", "voronoi"},
    "audit": {"geom", "model", "util", "voronoi"},
    "core": {"audit", "fermat", "geom", "model", "trace", "util", "voronoi"},
    "query": {"core", "fermat", "geom", "model", "trace", "util"},
    "network": {"core", "geom", "model", "util", "voronoi"},
    "data": {"core", "geom", "model", "util"},
    "storage": {"core", "geom", "model", "util"},
    "serve": {"audit", "core", "model", "query", "storage", "trace",
              "util"},
}

# Directories whose sources sit above the whole module DAG.
TOP_DIRS = ("tests", "bench", "tools", "examples")


def iter_files(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(SRC_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def includes_of(root, rel_path):
    """Quoted includes of one file, as written (repo-relative for src/)."""
    out = []
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        for line in f:
            m = INCLUDE_RE.match(line)
            if m:
                out.append(m.group(1))
    return out


def module_of(include_path):
    """The src/ module an include target lives in, or None for non-module
    includes (system headers come in <> and never reach here; a quoted
    include without a directory is file-local)."""
    if "/" not in include_path:
        return None
    return include_path.split("/", 1)[0]


def check_layering(root):
    """Returns a list of violation strings (empty = clean)."""
    violations = []
    for rel_path in iter_files(root, ["src"]):
        parts = rel_path.split(os.sep)
        module = parts[1]
        if module not in ALLOWED_DEPS:
            violations.append(
                "%s: module '%s' is not in the layering DAG "
                "(tools/analysis/check_includes.py ALLOWED_DEPS); new "
                "modules must declare their layer" % (rel_path, module))
            continue
        allowed = ALLOWED_DEPS[module] | {module}
        for inc in includes_of(root, rel_path):
            target = module_of(inc)
            if target is None or target not in ALLOWED_DEPS:
                continue  # file-local or non-module include
            if target not in allowed:
                violations.append(
                    "%s: includes \"%s\" — module '%s' may not depend on "
                    "'%s' (upward or sideways include; layer DAG in "
                    "DESIGN.md section 12)" % (rel_path, inc, module, target))
    return violations


def check_cycles(root):
    """Returns a list of cycle descriptions in the src/ header graph."""
    graph = {}
    for rel_path in iter_files(root, ["src"]):
        if not rel_path.endswith(".h"):
            continue
        key = rel_path[len("src/"):]
        graph[key] = [inc for inc in includes_of(root, rel_path)
                      if module_of(inc) in ALLOWED_DEPS]

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {k: WHITE for k in graph}
    cycles = []

    def dfs(node, stack):
        color[node] = GRAY
        stack.append(node)
        for nxt in graph.get(node, ()):
            if nxt not in graph:
                continue
            if color[nxt] == GRAY:
                cycle = stack[stack.index(nxt):] + [nxt]
                cycles.append(" -> ".join(cycle))
            elif color[nxt] == WHITE:
                dfs(nxt, stack)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node, [])
    return cycles


def check_dag_config():
    """Sanity-checks ALLOWED_DEPS itself: the declared module graph must be
    acyclic and closed (every named dependency is a declared module)."""
    problems = []
    for mod, deps in sorted(ALLOWED_DEPS.items()):
        for d in sorted(deps):
            if d not in ALLOWED_DEPS:
                problems.append(
                    "ALLOWED_DEPS[%r] names unknown module %r" % (mod, d))
    # Kahn's algorithm over the declared edges.
    indeg = {m: 0 for m in ALLOWED_DEPS}
    for deps in ALLOWED_DEPS.values():
        for d in deps:
            if d in indeg:
                indeg[d] += 1
    queue = sorted(m for m, n in indeg.items() if n == 0)
    seen = 0
    while queue:
        m = queue.pop()
        seen += 1
        for d in sorted(ALLOWED_DEPS[m]):
            if d not in indeg:
                continue
            indeg[d] -= 1
            if indeg[d] == 0:
                queue.append(d)
    if seen != len(ALLOWED_DEPS):
        problems.append("ALLOWED_DEPS contains a cycle — the layering "
                        "config itself must be a DAG")
    return problems


def run_checks(root):
    """All include checks. Returns a flat list of violation strings."""
    return check_dag_config() + check_layering(root) + check_cycles(root)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: grandparent of this "
                             "script)")
    args = parser.parse_args()
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    violations = run_checks(root)
    for v in violations:
        print(v)
    if violations:
        print("\ncheck_includes: %d violation(s)" % len(violations))
        return 1
    print("check_includes: clean (%d modules in the layering DAG)"
          % len(ALLOWED_DEPS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
