// Negative fixture: integer equality and tolerance compares are legal.
bool Check(int n, double x) { return n != 0 && (x < 1e-9 || x > -1e-9); }
