#include <cstdio>
// Negative fixture: stderr diagnostics stay legal in bench/.
void Warn(const char* msg) { std::fprintf(stderr, "%s\n", msg); }
