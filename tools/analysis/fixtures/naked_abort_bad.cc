#include <cstdlib>
// Positive fixture: abort() outside util/check.h.
void Die() { std::abort(); }
