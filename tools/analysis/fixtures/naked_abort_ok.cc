// Negative fixture: the string "abortion" or a member named abort_ must
// not match, and checks route through MOVD_CHECK.
struct S { bool abort_requested = false; };
