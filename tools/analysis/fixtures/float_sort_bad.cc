#include <algorithm>
#include <vector>
// Positive fixture: every sort call site must be vetted via the allowlist.
void Order(std::vector<double>* xs) { std::sort(xs->begin(), xs->end()); }
