// Negative fixture (lands at src/geom/predicates.cc): the exact-predicate
// kernels are exempt from float-eq.
bool Sign(double d) { return d == 0.0; }
