#include <unordered_map>
// Negative fixture: point lookups in an unordered container are fine.
int Get(int key) {
  std::unordered_map<int, int> counts;
  auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}
