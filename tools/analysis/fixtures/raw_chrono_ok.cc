// Negative fixture: mentioning a deadline type without reading a clock.
#include <chrono>
using TimePoint = std::chrono::steady_clock::time_point;
