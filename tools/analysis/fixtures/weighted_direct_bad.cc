// Positive fixture: calling a weighted-Voronoi backend outside the
// BuildWeightedCells dispatch.
void Build() { AdaptiveWeightedVoronoi(); }
