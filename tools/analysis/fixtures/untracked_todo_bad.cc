int x = 0;  // TODO: tighten this bound
