#include <chrono>
// Positive fixture: raw monotonic clock read outside stopwatch/cancel.
long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
