#include <cstdio>
// Positive fixture (lands under bench/): stdout printing defeats the
// shared harness.
void Report(double s) { std::printf("time=%f\n", s); }
