#include <unordered_map>
// Positive fixture: iterating an unordered container is nondeterministic.
int Sum() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}
