int x = 0;  // TODO(DESIGN.md section 5): tighten this bound
