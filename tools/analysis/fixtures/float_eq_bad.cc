// Positive fixture: float-eq must flag an exact compare against a float
// literal outside the predicate kernels.
bool Near(double x) { return x == 1.0; }
