#!/usr/bin/env python3
"""Unit tests for the static-analysis rules (DESIGN.md section 12).

Each lint rule is exercised against positive and negative fixture snippets
(fixtures/): the positive fixture must produce exactly the expected rule's
finding, the negative fixture must stay clean. The layering and
self-containment checkers are driven against tiny synthetic repo trees.
Registered in ctest under the `analysis` label, so a rule regression fails
CI like a code regression.

Usage: python3 tools/analysis/test_analysis.py [-v]
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
sys.path.insert(0, HERE)

import check_includes  # noqa: E402
import lint_rules  # noqa: E402


def lint_fixture(fixture, dest_rel):
    """Copies one fixture into a temp repo tree at `dest_rel` and lints it.
    Returns the list of rule names found."""
    with tempfile.TemporaryDirectory(prefix="movd_lint_") as root:
        dest = os.path.join(root, dest_rel)
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copyfile(os.path.join(FIXTURES, fixture), dest)
        findings = []
        lint_rules.lint_file(root, dest_rel, findings)
        return [f.rule for f in findings]


class LintRuleTest(unittest.TestCase):
    """Positive fixture must trigger exactly its rule; negative must not."""

    CASES = [
        # (rule, positive fixture, negative fixture, dest path)
        ("float-eq", "float_eq_bad.cc", "float_eq_ok.cc",
         "src/core/fixture.cc"),
        ("unordered-iter", "unordered_iter_bad.cc", "unordered_iter_ok.cc",
         "src/core/fixture.cc"),
        ("float-sort", "float_sort_bad.cc", None, "src/core/fixture.cc"),
        ("naked-abort", "naked_abort_bad.cc", "naked_abort_ok.cc",
         "src/core/fixture.cc"),
        ("untracked-todo", "untracked_todo_bad.cc", "untracked_todo_ok.cc",
         "src/core/fixture.cc"),
        ("raw-chrono", "raw_chrono_bad.cc", "raw_chrono_ok.cc",
         "src/core/fixture.cc"),
        ("bench-printf", "bench_printf_bad.cc", "bench_printf_ok.cc",
         "bench/fixture.cc"),
        ("weighted-direct", "weighted_direct_bad.cc", None,
         "src/core/fixture.cc"),
    ]

    def test_positive_fixtures_trigger(self):
        for rule, positive, _, dest in self.CASES:
            with self.subTest(rule=rule):
                self.assertEqual(lint_fixture(positive, dest), [rule])

    def test_negative_fixtures_stay_clean(self):
        for rule, _, negative, dest in self.CASES:
            if negative is None:
                continue
            with self.subTest(rule=rule):
                self.assertEqual(lint_fixture(negative, dest), [])

    def test_predicate_kernels_exempt_from_float_eq(self):
        self.assertEqual(
            lint_fixture("float_eq_predicates_ok.cc",
                         "src/geom/predicates.cc"), [])

    def test_rules_only_apply_in_their_directories(self):
        # bench-printf is a bench/ rule; the same code in tools/ is legal.
        self.assertEqual(
            lint_fixture("bench_printf_bad.cc", "tools/fixture.cc"), [])

    def test_comments_and_strings_are_stripped(self):
        with tempfile.TemporaryDirectory(prefix="movd_lint_") as root:
            rel = "src/core/fixture.cc"
            dest = os.path.join(root, rel)
            os.makedirs(os.path.dirname(dest))
            with open(dest, "w", encoding="utf-8") as f:
                f.write('// if (x == 1.0) in a comment is fine\n'
                        'const char* s = "x == 1.0 in a string is fine";\n')
            findings = []
            lint_rules.lint_file(root, rel, findings)
            self.assertEqual([f.rule for f in findings], [])


class AllowlistTest(unittest.TestCase):
    def make_root(self):
        root = tempfile.mkdtemp(prefix="movd_allow_")
        self.addCleanup(shutil.rmtree, root)
        os.makedirs(os.path.join(root, "src", "core"))
        os.makedirs(os.path.join(root, "tools"))
        shutil.copyfile(os.path.join(FIXTURES, "float_eq_bad.cc"),
                        os.path.join(root, "src", "core", "fixture.cc"))
        return root

    def write_allowlist(self, root, lines):
        with open(os.path.join(root, "tools", "lint_allowlist.txt"), "w",
                  encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")

    def run_lint(self, root):
        # The synthetic tree has none of the real entry-point files; keep
        # only findings from the fixture so entry-check-msg noise does not
        # leak into the assertions.
        kept, stale, _ = lint_rules.run_lint(root)
        kept = [f for f in kept if f.rule != "entry-check-msg"]
        return kept, stale

    def test_matching_entry_suppresses(self):
        root = self.make_root()
        self.write_allowlist(
            root, ["float-eq|src/core/fixture.cc|x == 1.0  # vetted"])
        kept, stale = self.run_lint(root)
        self.assertEqual([f.rule for f in kept], [])
        self.assertEqual(stale, [])

    def test_stale_entry_is_reported(self):
        root = self.make_root()
        self.write_allowlist(
            root,
            ["float-eq|src/core/fixture.cc|x == 1.0  # vetted",
             "float-eq|src/core/vanished.cc|y == 2.0  # covers nothing"])
        kept, stale = self.run_lint(root)
        self.assertEqual(kept, [])
        self.assertEqual(len(stale), 1)
        self.assertEqual(stale[0][1], "src/core/vanished.cc")


class LayeringTest(unittest.TestCase):
    def make_tree(self, files):
        """files: {rel_path: contents} under a temp root."""
        root = tempfile.mkdtemp(prefix="movd_layer_")
        self.addCleanup(shutil.rmtree, root)
        for rel, contents in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        return root

    def test_config_is_a_dag(self):
        self.assertEqual(check_includes.check_dag_config(), [])

    def test_downward_includes_pass(self):
        root = self.make_tree({
            "src/geom/point.h": "#pragma once\n",
            "src/core/molq.h": '#include "geom/point.h"\n',
        })
        self.assertEqual(check_includes.check_layering(root), [])

    def test_upward_include_fails(self):
        root = self.make_tree({
            "src/geom/bad.h": '#include "serve/query_engine.h"\n',
        })
        violations = check_includes.check_layering(root)
        self.assertEqual(len(violations), 1)
        self.assertIn("may not depend on 'serve'", violations[0])

    def test_sideways_include_fails(self):
        root = self.make_tree({
            "src/storage/bad.h": '#include "serve/metrics.h"\n',
        })
        violations = check_includes.check_layering(root)
        self.assertEqual(len(violations), 1)

    def test_unknown_module_fails(self):
        root = self.make_tree({"src/rogue/new.h": "#pragma once\n"})
        violations = check_includes.check_layering(root)
        self.assertEqual(len(violations), 1)
        self.assertIn("not in the layering DAG", violations[0])

    def test_header_cycle_detected(self):
        root = self.make_tree({
            "src/core/a.h": '#include "core/b.h"\n',
            "src/core/b.h": '#include "core/a.h"\n',
        })
        cycles = check_includes.check_cycles(root)
        self.assertEqual(len(cycles), 1)
        self.assertIn("core/a.h", cycles[0])

    def test_repo_head_is_clean(self):
        repo_root = os.path.dirname(os.path.dirname(HERE))
        self.assertEqual(check_includes.run_checks(repo_root), [])


class ClangTidyDriverTest(unittest.TestCase):
    """Drives tools/run_clang_tidy.sh with a stub clang-tidy binary, so the
    finding normalization, baseline filtering and stale-entry rejection are
    tested even on machines without clang."""

    STUB = """#!/bin/sh
if [ "$1" = "--version" ]; then echo "stub clang-tidy 0.0"; exit 0; fi
echo "%s/src/a.cc:3:5: warning: use after move [bugprone-use-after-move]"
echo "%s/src/a.cc:9:5: warning: vetted thing [performance-for-range-copy]"
exit 0
"""

    def run_driver(self, baseline_lines):
        root = tempfile.mkdtemp(prefix="movd_tidy_")
        self.addCleanup(shutil.rmtree, root)
        os.makedirs(os.path.join(root, "src"))
        os.makedirs(os.path.join(root, "tools"))
        os.makedirs(os.path.join(root, "build"))
        with open(os.path.join(root, "src", "a.cc"), "w") as f:
            f.write("int main() { return 0; }\n")
        with open(os.path.join(root, "build", "compile_commands.json"),
                  "w") as f:
            f.write("[]\n")
        with open(os.path.join(root, "tools", "clang_tidy_baseline.txt"),
                  "w") as f:
            f.write("\n".join(baseline_lines) + "\n")
        stub = os.path.join(root, "clang-tidy-stub")
        with open(stub, "w") as f:
            f.write(self.STUB % (root, root))
        os.chmod(stub, 0o755)
        driver = os.path.join(os.path.dirname(HERE), "run_clang_tidy.sh")
        shutil.copyfile(driver, os.path.join(root, "tools",
                                             "run_clang_tidy.sh"))
        os.chmod(os.path.join(root, "tools", "run_clang_tidy.sh"), 0o755)
        env = dict(os.environ, CLANG_TIDY=stub)
        proc = subprocess.run(
            [os.path.join(root, "tools", "run_clang_tidy.sh"), "build",
             "--require"],
            cwd=root, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        return proc

    def test_unsuppressed_finding_fails(self):
        proc = self.run_driver(["# empty"])
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("bugprone-use-after-move", proc.stdout)

    def test_baseline_suppresses_and_stale_fails(self):
        covered = ["bugprone-use-after-move|src/a.cc|use after move  # t",
                   "performance-for-range-copy|src/a.cc|vetted thing  # t"]
        proc = self.run_driver(covered)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("clean", proc.stdout)

        proc = self.run_driver(
            covered + ["bugprone-use-after-move|src/gone.cc|x  # stale"])
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("stale entry", proc.stdout)


class HeaderSelfContainmentTest(unittest.TestCase):
    """Drives check_headers.py against a synthetic tree (one good header,
    one that needs a type it never includes)."""

    def test_missing_include_fails_standalone_compile(self):
        cxx = shutil.which(os.environ.get("CXX", "c++"))
        if cxx is None:
            self.skipTest("no C++ compiler on PATH")
        root = tempfile.mkdtemp(prefix="movd_hdr_")
        self.addCleanup(shutil.rmtree, root)
        os.makedirs(os.path.join(root, "src", "geom"))
        with open(os.path.join(root, "src", "geom", "good.h"), "w") as f:
            f.write("#pragma once\nstruct P { double x = 0; };\n")
        with open(os.path.join(root, "src", "geom", "bad.h"), "w") as f:
            f.write("#pragma once\ninline double X(const P& p) "
                    "{ return p.x; }\n")  # P never declared here
        script = os.path.join(HERE, "check_headers.py")
        proc = subprocess.run(
            [sys.executable, script, "--root", root, "--jobs", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("bad.h", proc.stdout)
        self.assertNotIn("good.h is not self-contained", proc.stdout)


if __name__ == "__main__":
    unittest.main()
