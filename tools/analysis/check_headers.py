#!/usr/bin/env python3
"""Header self-containment check (DESIGN.md section 12).

Every public header under src/ must compile as the FIRST include of an
otherwise empty translation unit. A header that only compiles after some
sibling has been included first is a refactoring landmine: reordering
includes (or clang-tidy's include-sorter) breaks the build far from the
actual bug. The check compiles one synthetic TU per header with
`-fsyntax-only`, in parallel.

Usage:
  python3 tools/analysis/check_headers.py [--root=R] [--cxx=c++] [--jobs=N]

Exits 1 when any header fails to compile standalone; the compiler output
for each failing header is printed.
"""

import argparse
import concurrent.futures
import os
import subprocess
import sys
import tempfile


def find_headers(root):
    headers = []
    base = os.path.join(root, "src")
    for dirpath, _, files in os.walk(base):
        for name in sorted(files):
            if name.endswith(".h"):
                rel = os.path.relpath(os.path.join(dirpath, name), base)
                headers.append(rel)
    return sorted(headers)


def compile_header(cxx, src_dir, tmp_dir, rel_header):
    """Compiles `#include "rel_header"` as its own TU. Returns (rel_header,
    returncode, compiler-output)."""
    stem = rel_header.replace("/", "_").replace(".", "_")
    tu = os.path.join(tmp_dir, stem + ".cc")
    with open(tu, "w", encoding="utf-8") as f:
        f.write('#include "%s"\n' % rel_header)
    cmd = [cxx, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra", "-Werror",
           "-fno-fast-math", "-I", src_dir, tu]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return rel_header, proc.returncode, proc.stdout


def run_check(root, cxx, jobs):
    """Compiles every src/ header standalone. Returns a list of
    (header, compiler-output) failures."""
    src_dir = os.path.join(root, "src")
    headers = find_headers(root)
    failures = []
    with tempfile.TemporaryDirectory(prefix="movd_hdr_") as tmp_dir:
        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(compile_header, cxx, src_dir, tmp_dir, h)
                       for h in headers]
            for fut in concurrent.futures.as_completed(futures):
                rel_header, rc, output = fut.result()
                if rc != 0:
                    failures.append((rel_header, output))
    failures.sort()
    return headers, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: grandparent of this "
                             "script)")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler to syntax-check with (default: $CXX "
                             "or c++)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args()
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    headers, failures = run_check(root, args.cxx, args.jobs)
    for rel_header, output in failures:
        print("src/%s is not self-contained:" % rel_header)
        print(output)
    if failures:
        print("check_headers: %d of %d header(s) failed"
              % (len(failures), len(headers)))
        return 1
    print("check_headers: all %d src/ headers compile standalone (%s)"
          % (len(headers), args.cxx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
