// movd_audit: randomized invariant sweep over the geometry pipeline.
//
// Builds Delaunay triangulations, ordinary and weighted Voronoi diagrams,
// and full MOLQ pipelines across a grid of seeds, sizes, spatial
// distributions and weight modes, runs every structural auditor
// (src/audit, DESIGN.md §7) on the results, and prints a per-component
// violation table. Exits non-zero when any invariant fails, so CI can run
// it as a gate:
//
//   movd_audit --seeds=20 --sizes=64,256 --resolution=64 --threads=2
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/audit_delaunay.h"
#include "audit/audit_voronoi.h"
#include "audit/audit_weighted.h"
#include "core/molq.h"
#include "data/generate.h"
#include "util/flags.h"
#include "util/table.h"
#include "voronoi/delaunay.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace movd {
namespace {

constexpr size_t kMaxSampleMessages = 8;

struct Tally {
  explicit Tally(std::string name) : component(std::move(name)) {}

  std::string component;
  uint64_t runs = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;
  std::vector<std::string> samples;
};

void Absorb(const AuditReport& report, const std::string& where, Tally* t) {
  ++t->runs;
  t->checks += report.checks();
  t->violations += report.violations().size();
  for (const std::string& msg : report.Messages()) {
    if (t->samples.size() >= kMaxSampleMessages) break;
    t->samples.push_back(where + ": " + msg);
  }
}

std::vector<int> ParseSizes(const std::string& spec) {
  std::vector<int> sizes;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const int v = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (v > 0) sizes.push_back(v);
    pos = comma + 1;
  }
  return sizes;
}

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kGaussianClusters: return "clusters";
    case Distribution::kCorridor: return "corridor";
  }
  return "?";
}

std::vector<Point> MakePoints(Distribution dist, int size, uint64_t seed,
                              const Rect& bounds) {
  GeneratorConfig config;
  config.distribution = dist;
  config.count = static_cast<size_t>(size);
  config.bounds = bounds;
  config.seed = seed;
  return GeneratePoints(config);
}

// Weight modes for the weighted-diagram and pipeline sweeps.
enum class WeightMode { kUniform, kMultiplicative, kAdditive };

const char* WeightModeName(WeightMode m) {
  switch (m) {
    case WeightMode::kUniform: return "uniform";
    case WeightMode::kMultiplicative: return "mult";
    case WeightMode::kAdditive: return "add";
  }
  return "?";
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int seeds = static_cast<int>(flags.GetInt("seeds", 20));
  const std::vector<int> sizes =
      ParseSizes(flags.GetString("sizes", "64,256"));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const int resolution = static_cast<int>(flags.GetInt("resolution", 64));
  flags.WarnUnused(stderr);
  const Rect bounds(0, 0, 10000, 10000);
  const Distribution kDistributions[] = {Distribution::kUniform,
                                         Distribution::kGaussianClusters,
                                         Distribution::kCorridor};

  Tally t_delaunay{"delaunay"};
  Tally t_voronoi_nn{"voronoi/nn"};
  Tally t_voronoi_dt{"voronoi/delaunay"};
  Tally t_weighted_mult{"weighted/mult"};
  Tally t_weighted_add{"weighted/add"};
  Tally t_adaptive_mult{"adaptive/mult"};
  Tally t_adaptive_add{"adaptive/add"};
  Tally t_pipeline_rrb{"pipeline/rrb"};
  Tally t_pipeline_mbrb{"pipeline/mbrb"};

  for (int seed = 1; seed <= seeds; ++seed) {
    for (const int size : sizes) {
      for (const Distribution dist : kDistributions) {
        const std::string where =
            AuditStrFormat("seed=%d n=%d %s", seed, size,
                           DistributionName(dist));
        const std::vector<Point> points =
            MakePoints(dist, size, static_cast<uint64_t>(seed), bounds);

        // Delaunay triangulation.
        const Delaunay dt(points);
        Absorb(AuditDelaunay(dt), where, &t_delaunay);

        // Ordinary Voronoi, both cell-construction strategies.
        Absorb(AuditVoronoi(VoronoiDiagram::Build(
                   points, bounds, VoronoiDiagram::Strategy::kNearestNeighbor)),
               where, &t_voronoi_nn);
        Absorb(AuditVoronoi(VoronoiDiagram::Build(
                   points, bounds, VoronoiDiagram::Strategy::kDelaunay)),
               where, &t_voronoi_dt);

        // Weighted diagrams with random multiplicative / additive weights.
        std::mt19937_64 rng(static_cast<uint64_t>(seed) * 7919 + size);
        std::uniform_real_distribution<double> mult(0.5, 2.0);
        std::uniform_real_distribution<double> add(0.0, 2000.0);
        std::vector<WeightedSite> mult_sites, add_sites;
        mult_sites.reserve(points.size());
        add_sites.reserve(points.size());
        for (const Point& p : points) {
          mult_sites.push_back({p, mult(rng), 0.0});
          add_sites.push_back({p, 1.0, add(rng)});
        }
        WeightedOptions wopts;
        wopts.resolution = resolution;
        wopts.threads = threads;
        wopts.method = WeightedMethod::kDenseGrid;
        Absorb(AuditWeightedCells(
                   mult_sites, BuildWeightedCells(mult_sites, bounds, wopts),
                   bounds, resolution),
               where, &t_weighted_mult);
        Absorb(AuditWeightedCells(
                   add_sites, BuildWeightedCells(add_sites, bounds, wopts),
                   bounds, resolution),
               where, &t_weighted_add);
        // The adaptive construction, cross-checked against a dense-lattice
        // dominance replay at the same effective resolution (the
        // "adaptive cover contains every dense-dominated sample"
        // guarantee, DESIGN.md §11).
        wopts.method = WeightedMethod::kAdaptive;
        Absorb(AuditAdaptiveWeightedCells(
                   mult_sites, BuildWeightedCells(mult_sites, bounds, wopts),
                   bounds, resolution),
               where, &t_adaptive_mult);
        Absorb(AuditAdaptiveWeightedCells(
                   add_sites, BuildWeightedCells(add_sites, bounds, wopts),
                   bounds, resolution),
               where, &t_adaptive_add);
      }

      // Full pipelines: two-set queries mixing distributions and weight
      // modes, audited at every seam via MolqOptions::audit.
      for (const WeightMode mode :
           {WeightMode::kUniform, WeightMode::kMultiplicative,
            WeightMode::kAdditive}) {
        MolqQuery query;
        std::mt19937_64 rng(static_cast<uint64_t>(seed) * 104729 + size);
        std::uniform_real_distribution<double> w(0.5, 2.0);
        const Distribution set_dists[] = {Distribution::kUniform,
                                          Distribution::kGaussianClusters};
        for (int s = 0; s < 2; ++s) {
          ObjectSet set;
          set.name = AuditStrFormat("set%d", s);
          for (const Point& p :
               MakePoints(set_dists[s], size,
                          static_cast<uint64_t>(seed) * 31 + s, bounds)) {
            SpatialObject obj;
            obj.location = p;
            obj.object_weight = mode == WeightMode::kUniform ? 1.0 : w(rng);
            set.objects.push_back(obj);
          }
          query.sets.push_back(std::move(set));
          query.object_functions.push_back(
              mode == WeightMode::kAdditive ? WeightFunctionKind::kAdditive
                                            : WeightFunctionKind::kMultiplicative);
        }

        MolqOptions options;
        options.exec.audit = true;
        options.exec.threads = threads;
        options.exec.weighted_grid_resolution = resolution;
        for (const MolqAlgorithm algo :
             {MolqAlgorithm::kRrb, MolqAlgorithm::kMbrb}) {
          options.algorithm = algo;
          const MolqResult result = SolveMolq(query, bounds, options);
          Tally* t = algo == MolqAlgorithm::kRrb ? &t_pipeline_rrb
                                                 : &t_pipeline_mbrb;
          ++t->runs;
          t->checks += result.audit.checks();
          t->violations += result.audit.violations().size();
          const std::string where = AuditStrFormat(
              "seed=%d n=%d weights=%s", seed, size, WeightModeName(mode));
          for (const std::string& msg : result.audit.Messages()) {
            if (t->samples.size() >= kMaxSampleMessages) break;
            t->samples.push_back(where + ": " + msg);
          }
        }
      }
    }
  }

  const Tally* tallies[] = {&t_delaunay,      &t_voronoi_nn,
                            &t_voronoi_dt,    &t_weighted_mult,
                            &t_weighted_add,  &t_adaptive_mult,
                            &t_adaptive_add,  &t_pipeline_rrb,
                            &t_pipeline_mbrb};
  Table table({"component", "runs", "checks", "violations"});
  uint64_t total_violations = 0;
  for (const Tally* t : tallies) {
    table.AddRow({t->component, std::to_string(t->runs),
                  std::to_string(t->checks), std::to_string(t->violations)});
    total_violations += t->violations;
  }
  table.Print(stdout);

  if (total_violations > 0) {
    std::printf("\nsample violations:\n");
    for (const Tally* t : tallies) {
      for (const std::string& msg : t->samples) {
        std::printf("  [%s] %s\n", t->component.c_str(), msg.c_str());
      }
    }
    std::printf("\nFAIL: %llu invariant violation(s)\n",
                static_cast<unsigned long long>(total_violations));
    return 1;
  }
  std::printf("\nOK: all invariants held\n");
  return 0;
}

}  // namespace movd

int main(int argc, char** argv) { return movd::Main(argc, argv); }
