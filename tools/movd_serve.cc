// movd_serve — resident MOLQ query server speaking the serve line protocol
// (src/serve/protocol.h) over stdio or a Unix-domain socket.
//
//   movd_serve [--socket=/tmp/movd.sock]
//       [--layers=3] [--count=400] [--world=10000] [--seed=1]
//       [--inputs=a.csv,b.csv]
//       [--cache_mb=256] [--workers=0] [--grid=128] [--shards=1]
//       [--admit_cost_limit=0] [--admit_delay_ms=0]
//       [--warm_dir=DIR] [--save_warm] [--trace=FILE]
//
// --shards=N serves every dataset from N spatially sharded engine replicas
// (DESIGN.md §15): point-local verbs route to the shard owning their
// region, SKYLINE/WHATIF scatter-gather, and mutations replicate to every
// shard. Answers are bit-identical for any shard count; --cache_mb,
// --workers and --admit_cost_limit are server totals divided across
// shards. STATS returns the merged view plus a per-shard breakdown.
//
// --trace=FILE traces every served request into one engine-wide trace and
// writes it as Chrome trace_event JSON (chrome://tracing, Perfetto) on
// shutdown, plus an aggregated per-phase table on stderr.
//
// Always registers a synthetic dataset named "synthetic" (`--layers` object
// sets of `--count` GeoNames-like points each); `--inputs` additionally
// registers a dataset named "csv" from one CSV per layer. Without
// `--socket` the server reads requests from stdin and answers on stdout
// (one line each way); with it, any number of clients connect concurrently
// and their SOLVE requests are batched onto the engine's worker pool.
// SIGINT/SIGTERM (or the SHUTDOWN verb) stop the server; the metrics table
// is dumped to stderr on exit.

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/csv.h"
#include "data/generate.h"
#include "serve/protocol.h"
#include "serve/shard.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace {

using namespace movd;

std::atomic<bool> g_stop{false};
std::atomic<int> g_listen_fd{-1};

void HandleSignal(int) {
  g_stop.store(true);
  const int fd = g_listen_fd.load();
  // Unblocks the accept loop; shutdown() is async-signal-safe.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void RegisterSynthetic(Engine* engine, int layers, size_t count,
                       double world_size, uint64_t seed) {
  const Rect world(0, 0, world_size, world_size);
  const auto& catalog = GeoNamesLikeCatalog();
  MolqQuery query;
  for (int i = 0; i < layers; ++i) {
    const PoiClassSpec& spec = catalog[static_cast<size_t>(i) % catalog.size()];
    ObjectSet set;
    set.name = spec.name + "_" + std::to_string(i);
    const auto points =
        SamplePoiClass(spec.name, count, world, seed + static_cast<uint64_t>(i));
    set.objects.reserve(points.size());
    for (const Point& p : points) {
      SpatialObject obj;
      obj.location = p;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  engine->RegisterDataset("synthetic", std::move(query), world);
}

bool RegisterCsv(Engine* engine, const std::string& csv_list) {
  MolqQuery query;
  Rect world;
  size_t pos = 0;
  while (pos <= csv_list.size()) {
    size_t comma = csv_list.find(',', pos);
    if (comma == std::string::npos) comma = csv_list.size();
    const std::string path = csv_list.substr(pos, comma - pos);
    pos = comma + 1;
    if (path.empty()) continue;
    const auto objects = LoadObjectsCsv(path);
    if (!objects.has_value() || objects->empty()) {
      std::fprintf(stderr, "movd_serve: cannot read objects from %s\n",
                   path.c_str());
      return false;
    }
    ObjectSet set;
    set.name = path;
    set.objects = *objects;
    for (const SpatialObject& obj : set.objects) world.Expand(obj.location);
    query.sets.push_back(std::move(set));
  }
  if (query.sets.empty()) {
    std::fprintf(stderr, "movd_serve: --inputs named no readable files\n");
    return false;
  }
  engine->RegisterDataset("csv", std::move(query), world);
  return true;
}

/// Handles one protocol line; fills the response line (no trailing
/// newline). Returns true when the whole server should shut down.
bool ServeOneLine(Engine* engine, const std::string& line,
                  std::string* out, bool* close_conn) {
  ServeVerb verb = ServeVerb::kPing;
  EngineRequest request;
  const Status parsed = ParseRequest(line, &verb, &request);
  if (!parsed.ok()) {
    *out = "ERR - " + std::string(StatusCodeName(parsed.code())) + " " +
           parsed.message();
    return false;
  }
  switch (verb) {
    case ServeVerb::kPing:
      *out = "OK - pong";
      return false;
    case ServeVerb::kStats:
      *out = "OK - " + engine->MetricsJson();
      return false;
    case ServeVerb::kHelp:
      *out = "OK - " + HelpJson();
      return false;
    case ServeVerb::kQuit:
      *out = "OK - bye";
      *close_conn = true;
      return false;
    case ServeVerb::kShutdown:
      *out = "OK - shutting down";
      *close_conn = true;
      return true;
    case ServeVerb::kSolve:
      break;
  }
  // HandleAsync + get: the connection thread blocks while the request is
  // routed (or scattered) onto the engine's worker pools with everything
  // else in flight.
  const ServeResponse resp = engine->HandleAsync(std::move(request)).get();
  // Resolve answer group refs through the snapshot the response pinned —
  // never the engine's current one, which a concurrent mutation may have
  // superseded mid-solve.
  *out = FormatResponseLine(
      resp.snapshot != nullptr ? &resp.snapshot->query : nullptr, resp);
  return false;
}

int RunStdio(Engine* engine) {
  std::string line;
  while (!g_stop.load() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::string out;
    bool close_conn = false;
    const bool shutdown = ServeOneLine(engine, line, &out, &close_conn);
    out += '\n';
    std::fputs(out.c_str(), stdout);
    std::fflush(stdout);
    if (shutdown || close_conn) break;
  }
  return 0;
}

int RunSocket(Engine* engine, const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "movd_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "movd_serve: socket path too long: %s\n",
                 path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::fprintf(stderr, "movd_serve: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::fprintf(stderr, "movd_serve: listening on %s\n", path.c_str());

  std::mutex clients_mu;
  std::vector<int> client_fds;
  std::vector<std::thread> threads;
  while (!g_stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !g_stop.load()) continue;
      break;  // listener shut down
    }
    {
      std::lock_guard<std::mutex> lock(clients_mu);
      client_fds.push_back(fd);
    }
    threads.emplace_back([engine, fd, listen_fd, &clients_mu, &client_fds] {
      std::string buffer;
      char chunk[4096];
      bool close_conn = false;
      while (!close_conn && !g_stop.load()) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          break;
        }
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl = 0;
        while (!close_conn && (nl = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          if (line.empty()) continue;
          std::string out;
          if (ServeOneLine(engine, line, &out, &close_conn)) {
            g_stop.store(true);
            ::shutdown(listen_fd, SHUT_RDWR);
          }
          out += '\n';
          if (!SendAll(fd, out)) close_conn = true;
        }
      }
      // Deregister before closing so the shutdown sweep never touches a
      // reused descriptor.
      {
        std::lock_guard<std::mutex> lock(clients_mu);
        for (size_t i = 0; i < client_fds.size(); ++i) {
          if (client_fds[i] == fd) {
            client_fds.erase(client_fds.begin() +
                             static_cast<ptrdiff_t>(i));
            break;
          }
        }
      }
      ::close(fd);
    });
  }
  {
    // Unblock connection threads still parked in recv().
    std::lock_guard<std::mutex> lock(clients_mu);
    for (const int fd : client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  QueryEngineOptions options;
  options.cache_bytes = static_cast<size_t>(flags.GetInt("cache_mb", 256))
                        << 20;
  options.workers = static_cast<int>(flags.GetInt("workers", 0));
  options.exec.weighted_grid_resolution =
      static_cast<int>(flags.GetInt("grid", 128));
  // Admission control (both default off): total cost units allowed in the
  // worker queue, and the queue-delay budget past which requests are shed
  // with OVERLOADED.
  options.admission_cost_limit =
      static_cast<size_t>(flags.GetInt("admit_cost_limit", 0));
  options.admission_delay_budget_ms = flags.GetDouble("admit_delay_ms", 0.0);
  const std::string trace_path = flags.GetString("trace", "");
  Trace trace;
  if (!trace_path.empty()) options.exec.trace = &trace;
  ShardedEngineOptions sharded;
  sharded.shards = static_cast<int>(flags.GetInt("shards", 1));
  sharded.engine = options;
  ShardedEngine engine(sharded);

  const int layers = static_cast<int>(flags.GetInt("layers", 3));
  const size_t count = static_cast<size_t>(flags.GetInt("count", 400));
  const double world = flags.GetDouble("world", 10000.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  RegisterSynthetic(&engine, layers, count, world, seed);
  const std::string inputs = flags.GetString("inputs", "");
  if (!inputs.empty() && !RegisterCsv(&engine, inputs)) return 1;

  const std::string warm_dir = flags.GetString("warm_dir", "");
  const bool save_warm = flags.GetBool("save_warm", false);
  const std::string socket_path = flags.GetString("socket", "");
  flags.WarnUnused(stderr);

  if (!warm_dir.empty()) {
    const auto r = engine.LoadCache(warm_dir);
    if (!r.status.ok()) {
      std::fprintf(stderr, "movd_serve: warm start: %s\n",
                   r.status.ToString().c_str());
    } else {
      std::fprintf(stderr,
                   "movd_serve: warm start loaded %zu artifacts"
                   " (%zu skipped as corrupt/missing)\n",
                   r.loaded, r.failed);
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const int rc = socket_path.empty() ? RunStdio(&engine)
                                     : RunSocket(&engine, socket_path);

  if (save_warm) {
    if (warm_dir.empty()) {
      std::fprintf(stderr, "movd_serve: --save_warm needs --warm_dir\n");
    } else {
      const Status saved = engine.SaveCache(warm_dir);
      if (saved.ok()) {
        std::fprintf(stderr, "movd_serve: saved cache snapshot to %s\n",
                     warm_dir.c_str());
      } else {
        std::fprintf(stderr, "movd_serve: cache snapshot failed: %s\n",
                     saved.ToString().c_str());
      }
    }
  }
  engine.DumpMetrics(stderr);
  if (!trace_path.empty()) {
    const Status written = trace.WriteChromeJson(trace_path);
    if (written.ok()) {
      std::fprintf(stderr, "movd_serve: trace written to %s\n",
                   trace_path.c_str());
    } else {
      std::fprintf(stderr, "movd_serve: trace write failed: %s\n",
                   written.ToString().c_str());
    }
    trace.PrintPhaseTable(stderr);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
