#!/usr/bin/env bash
# Runs the gated perf suite at pinned small sizes (2 threads) and writes
# BENCH_*.json reports into OUT_DIR. The CI perf job and baseline refreshes
# (bench/baselines/) both go through this script so the pinned knobs cannot
# drift apart. Usage: run_perf_suite.sh BUILD_DIR OUT_DIR
set -euo pipefail
build=${1:?usage: run_perf_suite.sh BUILD_DIR OUT_DIR}
out=${2:?usage: run_perf_suite.sh BUILD_DIR OUT_DIR}
mkdir -p "$out"

# Repetition count is deliberately generous: the per-case median with IQR
# outlier rejection only stabilises on shared machines around 7+ samples.
common=(--threads=2 --seed=42 --repetitions=7 --warmup=1)

# fig08 needs n=64: at n<=32 the solves finish in well under a millisecond
# and the medians jitter past any sane gate; n=64 with extra repetitions
# holds run-to-run ratios inside the noise floor.
"$build/bench/fig08_molq_three_types" "${common[@]}" --sizes=64 \
    --json="$out/BENCH_fig08_molq_three_types.json"
"$build/bench/fig10_cost_bound" "${common[@]}" --problems=200 \
    --epsilons=1e-2,1e-3 --json="$out/BENCH_fig10_cost_bound.json"
"$build/bench/micro_fermat" "${common[@]}" \
    --json="$out/BENCH_micro_fermat.json"
"$build/bench/micro_geom" "${common[@]}" \
    --json="$out/BENCH_micro_geom.json"
"$build/bench/micro_spatial" "${common[@]}" --scale=16 \
    --json="$out/BENCH_micro_spatial.json"
