#!/usr/bin/env bash
# Runs the gated perf suite at pinned small sizes (2 threads) and writes
# BENCH_*.json reports into OUT_DIR. The CI perf job and baseline refreshes
# (bench/baselines/) both go through this script so the pinned knobs cannot
# drift apart. Usage: run_perf_suite.sh BUILD_DIR OUT_DIR
set -euo pipefail
build=${1:?usage: run_perf_suite.sh BUILD_DIR OUT_DIR}
out=${2:?usage: run_perf_suite.sh BUILD_DIR OUT_DIR}
mkdir -p "$out"

# Repetition count is deliberately generous: the per-case median with IQR
# outlier rejection only stabilises on shared machines around 7+ samples.
common=(--threads=2 --seed=42 --repetitions=7 --warmup=1)

# fig08 needs n=64: at n<=32 the solves finish in well under a millisecond
# and the medians jitter past any sane gate; n=64 with extra repetitions
# holds run-to-run ratios inside the noise floor.
"$build/bench/fig08_molq_three_types" "${common[@]}" --sizes=64 \
    --json="$out/BENCH_fig08_molq_three_types.json"
"$build/bench/fig10_cost_bound" "${common[@]}" --problems=200 \
    --epsilons=1e-2,1e-3 --json="$out/BENCH_fig10_cost_bound.json"
"$build/bench/micro_fermat" "${common[@]}" \
    --json="$out/BENCH_micro_fermat.json"
"$build/bench/micro_geom" "${common[@]}" \
    --json="$out/BENCH_micro_geom.json"
"$build/bench/micro_spatial" "${common[@]}" --scale=16 \
    --json="$out/BENCH_micro_spatial.json"

# Query-algebra gates (DESIGN.md §13): the four shape evaluators against a
# shared prebuilt overlay, plus the overlay build itself as its own case.
# The deterministic metrics (skyline size, dominance tests, boundary
# solves, sweep answers) gate exactly and survive hardware changes.
"$build/bench/query_shapes" "${common[@]}" --sizes=16,32 --vectors=8 \
    --json="$out/BENCH_query.json"

# Weighted-diagram construction gates (DESIGN.md §11): the micro suite
# compares the adaptive builder against the dense-grid reference directly;
# the fig11-14 runs pin small overlap workloads plus the weighted build
# phase end-to-end through BuildBasicMovd. Sizes keep the dense reference
# cases around a second while leaving the adaptive speedup well above the
# measurement noise.
"$build/bench/micro_weighted" "${common[@]}" --sizes=64,256 --resolution=256 \
    --json="$out/BENCH_micro_weighted.json"
"$build/bench/fig11_overlap_time" "${common[@]}" --sizes=128 --wres=512 \
    --json="$out/BENCH_fig11_overlap_time.json"
"$build/bench/fig12_ovr_count" "${common[@]}" --sizes=128 --wres=512 \
    --json="$out/BENCH_fig12_ovr_count.json"
"$build/bench/fig13_overlap_memory" "${common[@]}" --sizes=128 --wres=512 \
    --json="$out/BENCH_fig13_overlap_memory.json"
"$build/bench/fig14_multi_overlap" "${common[@]}" --budget_mb=2 --max_n=512 \
    --types=2,3 --wres=512 --wbuild_n=128 \
    --json="$out/BENCH_fig14_multi_overlap.json"

# Live-update maintenance gates (DESIGN.md §14): incremental basic/overlay
# patching vs from-scratch rebuilds over a pinned mutation script. The
# recomputed/retained counters gate exactly; the rebuild_over_patch
# derived ratios document the incremental speedup the serve engine relies
# on.
"$build/bench/update_patch" "${common[@]}" --sizes=200,800 --updates=32 \
    --json="$out/BENCH_update.json"

# Sharded-serving gates (DESIGN.md §15): single replica vs a 4-shard fleet
# at equal total workers. The answer counts gate exactly (the sharding
# contract makes them shard-count-invariant); the speedup_vs_s1 derived
# ratios document the scatter-split win and local-throughput parity.
"$build/bench/serve_shard" "${common[@]}" --sizes=24 --requests=240 \
    --scatter_requests=8 --workers=8 --updates=8 \
    --json="$out/BENCH_shard.json"
