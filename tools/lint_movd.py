#!/usr/bin/env python3
"""Repo-specific lint pass for the MOVD codebase.

Enforces determinism and robustness conventions that generic linters can't
know about (see DESIGN.md section 7):

  float-eq          No floating-point ==/!= comparisons in src/ outside the
                    exact-predicate kernels (src/geom/predicates.*,
                    src/geom/expansion.*). Exact predicate RESULTS may be
                    sign-tested (lines calling Orient2D/InCircle are
                    exempt); everything else must use explicit tolerances
                    or integer arithmetic.
  unordered-iter    No iteration over std::unordered_map/unordered_set:
                    hash order is unspecified, so anything folded out of it
                    is nondeterministic. Use a vector, a std::map, or sort
                    before folding.
  float-sort        Every std::sort/std::stable_sort call site must be
                    vetted: sorting by a floating-point key needs a
                    deterministic tie-breaker or a proof ties are
                    impossible. Vetted sites are recorded in the allowlist.
  naked-abort       abort()/exit() calls belong behind the MOVD_CHECK
                    macros (src/util/check.h), never inline.
  untracked-todo    TODO/FIXME/XXX/HACK markers must reference a tracked
                    design note ("DESIGN.md") or be resolved; drive-by
                    markers rot.
  entry-check-msg   Listed public pipeline entry points must validate their
                    arguments with MOVD_CHECK_MSG (message-carrying checks)
                    near the top of the definition.
  raw-chrono        No raw std::chrono clock reads (steady_clock::now() and
                    friends) in src/: all timing flows through
                    util/stopwatch.h (one monotonic time base shared by
                    stats, trace spans, and serve latency histograms) or
                    util/cancel.h (deadline arithmetic). A second ad-hoc
                    clock drifts against trace timestamps and cannot be
                    faked in tests.
  bench-printf      No stdout printing (printf/std::cout/puts) in bench/:
                    every bench reports through the shared harness
                    (src/bench_lib), which owns the result tables and the
                    BENCH_<suite>.json emitter. Hand-rolled tables drift
                    from the JSON and defeat bench_diff. stderr diagnostics
                    remain legal.
  weighted-direct   No direct calls to the weighted-Voronoi construction
                    backends (ApproximateWeightedVoronoi /
                    AdaptiveWeightedVoronoi) outside the WeightedOptions
                    dispatch in src/voronoi/weighted.{h,cc} and
                    weighted_adaptive.cc. Callers go through
                    BuildWeightedCells so the method knob, its validation,
                    and future backends stay in one place.

False positives are suppressed through tools/lint_allowlist.txt; each entry
is `rule|path-suffix|line-substring` plus a mandatory trailing comment
explaining why the site is safe. Entries that no longer match any finding
are reported as stale and fail the run, so suppressions cannot outlive the
code they covered.

The rule engine lives in tools/analysis/lint_rules.py (shared with the
fixture-driven unit tests); this script is the stable CLI entry point. The
sibling checkers — include-layering (tools/analysis/check_includes.py) and
header self-containment (tools/analysis/check_headers.py) — have their own
entry points and run in the CI `analysis` job.

Usage: python3 tools/lint_movd.py [--root=REPO_ROOT] [--allowlist-only]
Exits 1 when any unsuppressed finding or stale allowlist entry remains.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "analysis"))
import lint_rules  # noqa: E402


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--allowlist-only", action="store_true",
                        help="report only stale allowlist entries (the "
                             "dedicated CI step that makes stale "
                             "suppressions a hard failure on their own)")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    kept, stale, suppressed = lint_rules.run_lint(root)
    if not args.allowlist_only:
        for finding in kept:
            print(finding)
    else:
        kept = []
    # A suppression that no longer matches anything covers code that has
    # changed or vanished: force the entry to be deleted so stale holes
    # cannot accumulate.
    for rule, path_suffix, substring in stale:
        print("lint_allowlist.txt: stale entry (matches nothing): %s|%s|%s"
              % (rule, path_suffix, substring))
    if kept or stale:
        print("\nlint_movd: %d finding(s), %d stale allowlist entrie(s); "
              "fix them or allowlist with a justification in "
              "tools/lint_allowlist.txt" % (len(kept), len(stale)))
        return 1
    print("lint_movd: clean (%d finding(s) suppressed by allowlist)"
          % suppressed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
