// bench_diff — regression gate over the harness's BENCH_*.json reports
// (DESIGN.md §10).
//
// Modes:
//   bench_diff OLD.json NEW.json
//       Compare a new run against a baseline report. Exits 1 when any
//       gated comparison fails (timing regression on the same machine,
//       deterministic-metric drift, or a case that disappeared).
//   bench_diff --baseline_dir=bench/baselines NEW.json...
//       Compare each new report against <baseline_dir>/BENCH_<suite>.json,
//       the run-vs-baseline form the CI perf job uses.
//   bench_diff --check FILE...
//       Schema-validate reports without comparing (exit 1 on any invalid
//       or unparseable file).
//
// Gating knobs (see bench_lib/diff.h for exact semantics):
//   --time_threshold=0.20     relative median growth that counts as a
//                             regression
//   --noise_multiplier=3.0    the delta must also exceed this multiple of
//                             the larger run's stddev
//   --max_noise_cv=0.30       noisy-machine gate: cases whose stddev/median
//                             exceeds this in either run are within-noise
//   --metric_tolerance=1e-6   relative tolerance for deterministic metrics
//   --cross_machine_timing    gate timings even when the machine
//                             fingerprints differ (default: advisory only)
//   --metrics_only            skip timing verdicts entirely

#include <cstdio>
#include <string>
#include <vector>

#include "bench_lib/diff.h"
#include "bench_lib/report.h"
#include "util/flags.h"

namespace movd::bench {
namespace {

int CheckFiles(const std::vector<std::string>& paths) {
  int invalid = 0;
  for (const std::string& path : paths) {
    const StatusOr<BenchReport> report = BenchReport::Load(path);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   report.status().ToString().c_str());
      ++invalid;
      continue;
    }
    std::fprintf(stderr, "%s: ok (%s, %zu cases)\n", path.c_str(),
                 report.value().suite.c_str(), report.value().cases.size());
  }
  return invalid == 0 ? 0 : 1;
}

int DiffPair(const std::string& old_path, const std::string& new_path,
             const DiffOptions& options) {
  const StatusOr<BenchReport> old_report = BenchReport::Load(old_path);
  if (!old_report.ok()) {
    std::fprintf(stderr, "%s: %s\n", old_path.c_str(),
                 old_report.status().ToString().c_str());
    return 2;
  }
  const StatusOr<BenchReport> new_report = BenchReport::Load(new_path);
  if (!new_report.ok()) {
    std::fprintf(stderr, "%s: %s\n", new_path.c_str(),
                 new_report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s: %s (baseline) vs %s\n",
              new_report.value().suite.c_str(), old_path.c_str(),
              new_path.c_str());
  const DiffResult result =
      DiffReports(old_report.value(), new_report.value(), options);
  PrintDiff(result, stdout);
  return result.failed() ? 1 : 0;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  DiffOptions options;
  options.time_threshold =
      flags.GetDouble("time_threshold", options.time_threshold);
  options.noise_multiplier =
      flags.GetDouble("noise_multiplier", options.noise_multiplier);
  options.metric_tolerance =
      flags.GetDouble("metric_tolerance", options.metric_tolerance);
  options.max_noise_cv = flags.GetDouble("max_noise_cv", options.max_noise_cv);
  options.cross_machine_timing =
      flags.GetBool("cross_machine_timing", options.cross_machine_timing);
  options.metrics_only = flags.GetBool("metrics_only", options.metrics_only);
  const bool check_only = flags.GetBool("check", false);
  const std::string baseline_dir = flags.GetString("baseline_dir", "");
  const std::vector<std::string>& paths = flags.positional();
  flags.WarnUnused(stderr);

  if (check_only) {
    if (paths.empty()) {
      std::fprintf(stderr, "bench_diff --check needs at least one file\n");
      return 2;
    }
    return CheckFiles(paths);
  }

  if (!baseline_dir.empty()) {
    if (paths.empty()) {
      std::fprintf(stderr,
                   "bench_diff --baseline_dir=DIR needs report files\n");
      return 2;
    }
    int exit_code = 0;
    for (const std::string& new_path : paths) {
      const StatusOr<BenchReport> peek = BenchReport::Load(new_path);
      if (!peek.ok()) {
        std::fprintf(stderr, "%s: %s\n", new_path.c_str(),
                     peek.status().ToString().c_str());
        exit_code = std::max(exit_code, 2);
        continue;
      }
      const std::string old_path =
          baseline_dir + "/BENCH_" + peek.value().suite + ".json";
      exit_code = std::max(exit_code, DiffPair(old_path, new_path, options));
      std::printf("\n");
    }
    return exit_code;
  }

  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [gating flags] OLD.json NEW.json\n"
                 "       bench_diff --baseline_dir=DIR NEW.json...\n"
                 "       bench_diff --check FILE...\n");
    return 2;
  }
  return DiffPair(paths[0], paths[1], options);
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
