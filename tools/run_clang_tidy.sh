#!/usr/bin/env bash
# Parallel clang-tidy driver with a stale-rejecting suppression baseline
# (DESIGN.md §12).
#
# Runs clang-tidy (config: .clang-tidy) over every .cc/.cpp under src/,
# tools/, examples/, bench/ and tests/ using the compile_commands.json the
# build exports, filters findings through tools/clang_tidy_baseline.txt,
# and fails on:
#   - any finding not covered by a baseline entry, or
#   - any baseline entry that matches no finding (stale suppression).
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [--require] [--jobs=N]
#   BUILD_DIR   directory containing compile_commands.json (default: build)
#   --require   fail (exit 2) when clang-tidy is missing instead of
#               skipping; CI passes this, local GCC-only machines get a
#               clean skip.
#   --jobs=N    parallelism (default: nproc)
#
# Exit codes: 0 clean/skipped, 1 findings or stale baseline entries,
# 2 environment problems (missing tool under --require, no compile DB).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="build"
REQUIRE=0
JOBS="$(nproc 2>/dev/null || echo 4)"
for arg in "$@"; do
  case "$arg" in
    --require) REQUIRE=1 ;;
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# Locate clang-tidy: $CLANG_TIDY, then PATH, then versioned spellings.
CLANG_TIDY="${CLANG_TIDY:-}"
if [ -z "$CLANG_TIDY" ]; then
  for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
              clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANG_TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$CLANG_TIDY" ]; then
  if [ "$REQUIRE" = 1 ]; then
    echo "run_clang_tidy: clang-tidy not found and --require set" >&2
    exit 2
  fi
  echo "run_clang_tidy: clang-tidy not found; skipping (install clang-tidy" \
       "or set \$CLANG_TIDY; CI runs this gate with --require)" >&2
  exit 0
fi

COMPILE_DB="$ROOT/$BUILD_DIR/compile_commands.json"
if [ ! -f "$COMPILE_DB" ]; then
  echo "run_clang_tidy: $COMPILE_DB not found; configure first:" \
       "cmake -B $BUILD_DIR -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on by" \
       "default)" >&2
  exit 2
fi

cd "$ROOT"
FILES="$(find src tools examples bench -name '*.cc' -o -name '*.cpp' \
         | grep -v 'tools/analysis/fixtures' | sort)"
COUNT="$(echo "$FILES" | wc -l)"
echo "run_clang_tidy: $("$CLANG_TIDY" --version | head -1 | sed 's/^ *//')," \
     "$COUNT files, $JOBS jobs"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
# shellcheck disable=SC2086
echo "$FILES" | xargs -P "$JOBS" -n 8 \
  "$CLANG_TIDY" -p "$ROOT/$BUILD_DIR" --quiet 2>/dev/null >> "$RAW"

# Normalize findings to "path:line:col: warning: text [check]" lines and
# apply the baseline in one pass.
python3 - "$RAW" "$ROOT" <<'PY'
import os
import re
import sys

raw_path, root = sys.argv[1], sys.argv[2]
FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):\d+: "
    r"(?:warning|error): (?P<text>.*) \[(?P<check>[^\]]+)\]$")

findings = []
with open(raw_path, encoding="utf-8", errors="replace") as f:
    for line in f:
        m = FINDING_RE.match(line.rstrip("\n"))
        if not m:
            continue
        path = os.path.relpath(m.group("path"), root)
        findings.append((path, int(m.group("line")), m.group("check"),
                         m.group("text")))
# clang-tidy repeats header findings once per including TU; dedupe.
findings = sorted(set(findings))

baseline_path = os.path.join(root, "tools", "clang_tidy_baseline.txt")
baseline = []
if os.path.exists(baseline_path):
    with open(baseline_path, encoding="utf-8") as f:
        for raw in f:
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            parts = [p.strip() for p in entry.split("|")]
            if len(parts) != 3:
                print("clang_tidy_baseline.txt: malformed entry: %s"
                      % raw.strip(), file=sys.stderr)
                sys.exit(2)
            baseline.append(tuple(parts))

used = set()
kept = []
for path, line, check, text in findings:
    suppressed = False
    for idx, (b_check, b_suffix, b_substr) in enumerate(baseline):
        if check == b_check and path.endswith(b_suffix) and b_substr in text:
            used.add(idx)
            suppressed = True
            break
    if not suppressed:
        kept.append((path, line, check, text))

for path, line, check, text in kept:
    print("%s:%d: [%s] %s" % (path, line, check, text))
stale = [e for i, e in enumerate(baseline) if i not in used]
for b_check, b_suffix, b_substr in stale:
    print("clang_tidy_baseline.txt: stale entry (matches nothing): %s|%s|%s"
          % (b_check, b_suffix, b_substr))

if kept or stale:
    print("\nrun_clang_tidy: %d finding(s), %d stale baseline entrie(s)"
          % (len(kept), len(stale)))
    sys.exit(1)
print("run_clang_tidy: clean (%d finding(s) suppressed by baseline)"
      % (len(findings) - len(kept)))
PY
exit $?
